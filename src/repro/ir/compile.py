"""Kernel compilation driver: specialization ladder + trace cache.

This module mirrors Julia's method-specialization machinery for our
tracing JIT.  ``compile_kernel(fn, ndim, args, reduce=...)`` returns a
:class:`CompiledKernel` ready to execute, choosing the cheapest strategy
that works:

1. **Symbolic trace** — scalars stay symbolic, so one trace serves every
   future call with the same argument *types* (the common case; analogue
   of Julia specializing on types).
2. **Value-specialized trace** — if the kernel needs concrete scalar
   values (loop bounds, ``int()``), re-trace with scalars baked in as
   constants; the cache key then includes those values (analogue of
   ``Val{N}`` specialization).
3. **Interpreter** — if tracing still fails (unbounded control flow,
   unsupported constructs), fall back to the scalar reference executor.

Caching is keyed on the kernel function object plus an argument-type
signature; shape-dependent traces (kernels that call ``len``) include the
array shapes in the key.  Cache statistics are exposed for the
trace-cache ablation benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..core.exceptions import (
    ConcretizationRequired,
    PreferencesError,
    TraceError,
    TraceFallback,
)
from ..core.preferences import EXECUTOR_MODES, resolve_executor_mode
from . import compilecache
from . import nodes as N
from .arena import ScratchArena
from . import writes
from .cgen import NativeDeclined, NativeKernel, try_lower_native
from .codegen import CodegenError, CodegenProgram, lower_trace
from .interpreter import interpret_for, interpret_reduce
from .optimize import optimize_trace
from .stats import TraceStats, analyze
from .tracer import trace_kernel
from .vectorizer import IndexDomain, execute_trace, reduce_trace

__all__ = [
    "CompiledKernel",
    "KernelCache",
    "compile_kernel",
    "clear_cache",
    "cache_info",
    "executor_mode",
    "set_executor_mode",
]


@dataclass(frozen=True)
class CompiledKernel:
    """An executable kernel: either a vectorizable trace or an
    interpreter-bound Python function.

    Attributes
    ----------
    fn:
        The original kernel function (always kept — the interpreter and
        diagnostics need it).
    ndim:
        Launch-domain rank.
    mode:
        ``"native"``, ``"native-specialized"``, ``"codegen"``,
        ``"codegen-specialized"``, ``"vector"``,
        ``"vector-specialized"`` or ``"interpreter"``.
    trace:
        The IR trace (``None`` in interpreter mode).
    stats:
        Static work analysis (interpreter mode gets a conservative
        placeholder with ``n_paths = 0``).
    fallback_reason:
        Why the ladder descended, for diagnostics (``None`` for plain
        codegen/vector mode).
    codegen:
        The generated straight-line NumPy program (codegen and native
        modes — native keeps it as the per-call fallback rung).
    native:
        The compiled C kernel (native modes only).  Every native kernel
        also carries its codegen program: a call that fails the native
        run-time pre-flight falls through to codegen silently.
    """

    fn: Callable
    ndim: int
    mode: str
    trace: Optional[N.Trace]
    stats: TraceStats
    fallback_reason: Optional[str] = None
    codegen: Optional[CodegenProgram] = None
    native: Optional[NativeKernel] = None

    @property
    def is_reduction(self) -> bool:
        if self.trace is not None:
            return self.trace.is_reduction
        return True  # interpreter kernels are checked at run time

    def run_for(
        self,
        domain: IndexDomain,
        args: Sequence[Any],
        arena: Optional[ScratchArena] = None,
    ) -> None:
        """Execute as a ``parallel_for`` body over ``domain``.

        ``arena`` supplies scratch buffers to the generated program
        (ignored by the IR-walk and interpreter tiers); ``None`` uses the
        process-default arena.
        """
        if self.native is not None:
            try:
                self.native.run_for(domain, args, arena)
                return
            except NativeDeclined as exc:
                # Per-call ineligibility (aliasing, extent, dtype drift):
                # record and fall through to the codegen program — the
                # pre-flight ran before any side effect.
                from .nativecache import record_decline

                record_decline(exc.reason)
        if self.codegen is not None:
            self.codegen.run_for(domain, args, arena)
        elif self.trace is not None:
            execute_trace(self.trace, domain, args)
        else:
            interpret_for(self.fn, domain, args)

    def run_reduce(
        self,
        domain: IndexDomain,
        args: Sequence[Any],
        op: str = "add",
        arena: Optional[ScratchArena] = None,
    ) -> float:
        """Execute as a ``parallel_reduce`` body over ``domain``."""
        if self.native is not None:
            try:
                return self.native.run_reduce(domain, args, op, arena)
            except NativeDeclined as exc:
                from .nativecache import record_decline

                record_decline(exc.reason)
        if self.codegen is not None:
            return self.codegen.run_reduce(domain, args, op, arena)
        if self.trace is not None:
            return reduce_trace(self.trace, domain, args, op)
        return interpret_reduce(self.fn, domain, args, op)


def _scalar_value(a: Any) -> Any:
    return a.item() if isinstance(a, np.generic) else a


def _fn_key(fn: Callable) -> Any:
    """The function component of a kernel cache key.

    Plain (closure-free) kernels key on the function object itself —
    the cheapest stable identity.  Closures need more care, in both
    directions:

    * a kernel *factory* returns a fresh function object per call, so
      identity-keying re-traces a kernel whose captured ``alpha`` merely
      changed Python identity, not value (signature churn — and graph
      replay depends on stable keys);
    * rebinding a closure cell on the *same* function object would
      silently reuse a trace specialized on the old captured value.

    Both are fixed by keying closures structurally: module + qualname +
    code object + the captured cell values, with scalar cells normalized
    to their *values* and everything else (arrays, objects) to identity.
    """
    cells = getattr(fn, "__closure__", None)
    if not cells:
        return fn
    parts = []
    for cell in cells:
        try:
            v = cell.cell_contents
        except ValueError:  # not-yet-filled cell (self-referential defs)
            parts.append(("empty",))
            continue
        v = _scalar_value(v)
        if isinstance(v, (bool, int, float, complex, str, bytes)) or v is None:
            parts.append(("val", type(v).__name__, v))
        else:
            parts.append(("id", id(v)))
    return (fn.__module__, fn.__qualname__, fn.__code__, tuple(parts))


def _type_signature(args: Sequence[Any]) -> tuple:
    """Type-level signature: array rank+dtype kind, scalar Python type."""
    sig = []
    for a in args:
        if isinstance(a, np.ndarray):
            sig.append(("arr", a.ndim, a.dtype.str))
        else:
            sig.append(("scl", type(_scalar_value(a))))
    return tuple(sig)


def _shape_signature(args: Sequence[Any]) -> tuple:
    return tuple(a.shape if isinstance(a, np.ndarray) else None for a in args)


def _value_signature(args: Sequence[Any]) -> tuple:
    sig = []
    for a in args:
        if isinstance(a, np.ndarray):
            sig.append(None)
            continue
        v = _scalar_value(a)
        try:
            hash(v)
        except TypeError:
            # Unhashable exotic argument (dict, list, ...): key on object
            # identity — the kernel runs interpreted anyway, and a fresh
            # object simply recompiles.
            v = ("unhashable", id(a))
        sig.append(v)
    return tuple(sig)


@dataclass
class KernelCache:
    """Per-process cache of compiled kernels.

    Thread-safe: applications may issue constructs from several Python
    threads (e.g. one per simulated device); lookups and stores hold one
    lock.  A duplicate compile race is benign — both threads produce
    equivalent CompiledKernels and the last store wins.
    """

    entries: dict = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def lookup(
        self, key: tuple, *, count_miss: bool = False
    ) -> Optional[CompiledKernel]:
        """Fetch a compiled kernel; a hit always counts.

        A miss is counted only when ``count_miss`` is set — the compile
        driver sets it on the *final* ladder rung, so one full cache-miss
        walk counts exactly one miss, and a compile that subsequently
        raises (e.g. ``TraceError`` for a valueless reduce kernel) is
        still counted instead of silently inflating the hit rate.
        """
        with self._lock:
            ck = self.entries.get(key)
            if ck is not None:
                self.hits += 1
            elif count_miss:
                self.misses += 1
            return ck

    def store(self, key: tuple, ck: CompiledKernel) -> None:
        with self._lock:
            self.entries[key] = ck

    def clear(self) -> None:
        with self._lock:
            self.entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """A consistent snapshot of size/hits/misses.

        All three counters are read under the cache lock so concurrent
        compiles can never produce a torn view (e.g. a hit counted
        against the previous size).
        """
        with self._lock:
            return {
                "size": len(self.entries),
                "hits": self.hits,
                "misses": self.misses,
            }


_CACHE = KernelCache()


def clear_cache(cache: Optional[KernelCache] = None) -> None:
    """Drop all compiled kernels (tests / ablation benchmarks).

    Clears the process-global cache by default; pass a context-scoped
    :class:`KernelCache` to clear that one instead.
    """
    (cache if cache is not None else _CACHE).clear()
    if cache is None:
        # Process-global clear also drops the write-version table;
        # outstanding graph snapshots see the epoch bump and rebind.
        writes.reset()


def cache_info(cache: Optional[KernelCache] = None) -> dict:
    """Return cache statistics: size, hits, misses (locked snapshot),
    plus the process-wide launch-graph counters under ``"graph"``
    (captures/replays/fused pairs — see :func:`repro.graph.graph_stats`),
    the verifier diagnostic counters under ``"verify"`` (totals and
    per-rule counts — see
    :data:`repro.ir.diagnostics.counters`), and the native-executor
    counters under ``"native"`` — ``{compiled, disk_hits, mem_hits,
    declined: {reason: n}}`` — covering every decline class including
    link/load-time failures (see
    :func:`repro.ir.nativecache.native_stats`), the persistent
    compile-cache counters under ``"disk"`` — ``{disk_hits,
    disk_misses, stores, invalidated, bytes, ...}`` (see
    :func:`repro.ir.compilecache.disk_stats`), and the cluster-backend
    counters under ``"cluster"`` — shards, halo exchanges/bytes,
    respawns, rebalances, degradations (see
    :func:`repro.backends.cluster.cluster_stats`).

    Reports on the process-global cache by default; pass a
    context-scoped :class:`KernelCache` to inspect that one instead.
    """
    info = (cache if cache is not None else _CACHE).stats()
    from ..graph import graph_stats
    from .diagnostics import counters
    from .nativecache import native_stats

    info["graph"] = graph_stats()
    info["verify"] = counters.snapshot()
    info["native"] = native_stats()
    info["disk"] = compilecache.disk_stats()
    from ..backends.cluster import cluster_stats

    info["cluster"] = cluster_stats()
    return info


def _analyze_or_placeholder(trace: Optional[N.Trace]) -> TraceStats:
    if trace is None:
        return TraceStats(loads=0.0, stores=0.0, flops=0.0, n_paths=0)
    return analyze(trace)


# ---------------------------------------------------------------------------
# Executor selection (the PYACC_EXECUTOR ablation axis)
# ---------------------------------------------------------------------------

_executor_override: Optional[str] = None
_executor_resolved: Optional[str] = None


def executor_mode() -> str:
    """The active executor strategy:
    ``native``/``codegen``/``vector``/``interpreter``.

    Resolved once from ``PYACC_EXECUTOR`` / the preferences file (see
    :func:`repro.core.preferences.resolve_executor_mode`) and cached —
    compile_kernel consults this on every call, so the resolution must
    not touch the filesystem per launch.
    """
    global _executor_resolved
    if _executor_override is not None:
        return _executor_override
    if _executor_resolved is None:
        _executor_resolved = resolve_executor_mode()
    return _executor_resolved


def set_executor_mode(mode: Optional[str]) -> None:
    """Override the executor strategy process-wide (ablation/tests).

    ``None`` drops the override *and* the cached resolution, so the next
    compile re-reads ``PYACC_EXECUTOR``/preferences.  Note the kernel
    cache keys on the executor, so switching recompiles rather than
    reusing kernels built for another strategy.
    """
    global _executor_override, _executor_resolved
    if mode is not None and mode not in EXECUTOR_MODES:
        raise PreferencesError(
            f"executor mode must be one of {EXECUTOR_MODES}, got {mode!r}"
        )
    _executor_override = mode
    _executor_resolved = None


def compile_kernel(
    fn: Callable,
    ndim: int,
    args: Sequence[Any],
    *,
    reduce: bool = False,
    max_paths: Optional[int] = None,
    cache: Optional[KernelCache] = None,
    executor: Optional[str] = None,
) -> CompiledKernel:
    """Compile (or fetch from cache) a kernel for the given call site.

    ``args`` are the runtime arguments; only their types (and, when the
    ladder requires it, shapes/values) enter the cache key.  ``cache``
    selects the :class:`KernelCache` to consult — ``None`` (the default)
    uses the process-global cache; execution contexts may scope a private
    one (see :mod:`repro.core.context`).  ``executor`` pins the execution
    strategy for this call
    (``native``/``codegen``/``vector``/``interpreter``); ``None`` uses
    :func:`executor_mode`.
    """
    if cache is None:
        cache = _CACHE
    if executor is None:
        executor = executor_mode()
    elif executor not in EXECUTOR_MODES:
        raise PreferencesError(
            f"executor mode must be one of {EXECUTOR_MODES}, got {executor!r}"
        )
    base_key = (_fn_key(fn), ndim, bool(reduce), executor, _type_signature(args))

    # 1. Generic (type-specialized) entry.
    ck = cache.lookup(base_key)
    if ck is not None:
        return ck
    # 2. Shape-specialized entry (kernel observed len()/shape).
    shape_key = base_key + ("shape", _shape_signature(args))
    ck = cache.lookup(shape_key)
    if ck is not None:
        return ck
    # 3. Value-specialized entry (kernel needed concrete scalars).  This
    # is the final rung: a miss here is *the* cache miss for this call.
    value_key = (
        base_key
        + ("shape", _shape_signature(args))
        + ("values", _value_signature(args))
    )
    ck = cache.lookup(value_key, count_miss=True)
    if ck is not None:
        return ck

    # 4. Persistent tier (PYACC_COMPILE_CACHE): rebuild from an entry
    # published by an earlier process — no tracing, verification, or
    # lowering.  Kernels the fingerprint cannot content-address
    # (closures over large arrays, exotic globals) return ``None`` keys
    # and simply compile as before.
    pkeys = compilecache.kernel_keys(
        fn, ndim, bool(reduce), executor, args, max_paths
    )
    if pkeys is not None:
        ck, disk_rung = compilecache.load_kernel(pkeys, fn)
        if ck is not None:
            mem_key = {
                "base": base_key,
                "shape": shape_key,
                "value": value_key,
            }[disk_rung]
            cache.store(mem_key, ck)
            return ck
    compilecache.record_compile()

    kwargs = {} if max_paths is None else {"max_paths": max_paths}
    trace: Optional[N.Trace] = None
    mode = "vector"
    reason: Optional[str] = None
    if executor == "interpreter":
        # Forced scalar execution (ablation baseline): skip tracing.
        mode = "interpreter"
        reason = "executor=interpreter (forced scalar execution)"
    else:
        try:
            trace = trace_kernel(fn, ndim, args, **kwargs)
        except ConcretizationRequired as exc:
            reason = str(exc)
            try:
                trace = trace_kernel(
                    fn, ndim, args, concretize_scalars=True, **kwargs
                )
                mode = "vector-specialized"
            except TraceError as exc2:
                reason = f"{reason}; then: {exc2}"
                trace = None
                mode = "interpreter"
        except TraceFallback as exc:
            reason = str(exc)
            trace = None
            mode = "interpreter"
        except TraceError as exc:
            reason = str(exc)
            trace = None
            mode = "interpreter"

    if trace is not None and reduce and trace.result is None:
        raise TraceError(
            f"kernel {getattr(fn, '__name__', fn)!r} was used with "
            "parallel_reduce but returns no value on any path"
        )
    if trace is not None:
        # JIT middle-end: constant folding, identities, hash-consing
        # (see repro.ir.optimize).  Semantics-preserving by construction;
        # the differential suite runs compiled (optimized) kernels
        # against the interpreter.
        trace = optimize_trace(trace)
    if trace is not None and not reduce and trace.result is not None:
        # A for-kernel that returns a value is legal (the value is simply
        # discarded), matching JACC's parallel_for semantics.
        trace = N.Trace(
            ndim=trace.ndim,
            stores=trace.stores,
            result=None,
            array_args=trace.array_args,
            scalar_args=trace.scalar_args,
            const_args=trace.const_args,
            n_paths=trace.n_paths,
            shape_dependent=trace.shape_dependent,
            implicit_return_paths=0,
        )

    codegen: Optional[CodegenProgram] = None
    native: Optional[NativeKernel] = None
    if executor in ("codegen", "native") and trace is not None:
        # Codegen rung: lower the optimized trace to straight-line NumPy
        # source.  A lowering failure is not an error — the IR walk runs
        # the same trace, just slower.  The native executor lowers this
        # rung too: it is the per-call fallback under the C kernel.
        try:
            codegen = lower_trace(trace, args)
            mode = "codegen" if mode == "vector" else "codegen-specialized"
        except CodegenError as exc:
            reason = (
                f"{reason}; codegen declined: {exc}"
                if reason
                else f"codegen declined: {exc}"
            )
    nreason: Optional[str] = None
    if executor == "native" and codegen is not None:
        # Top rung: compile the trace to a C shared object.  Declines
        # (unsupported op/dtype, missing compiler, compile failure) are
        # recorded in the native counters and the kernel stays codegen.
        native, nreason = try_lower_native(trace, args)
        if native is not None:
            nreason = None
            mode = "native" if mode == "codegen" else "native-specialized"
        else:
            reason = (
                f"{reason}; native declined: {nreason}"
                if reason
                else f"native declined: {nreason}"
            )

    ck = CompiledKernel(
        fn=fn,
        ndim=ndim,
        mode=mode,
        trace=trace,
        stats=_analyze_or_placeholder(trace),
        fallback_reason=reason,
        codegen=codegen,
        native=native,
    )
    if nreason is not None:
        # Remember the native decline reason so a warm disk load can
        # replay it into the decline taxonomy (counter parity).
        object.__setattr__(ck, "_native_decline", nreason)

    specialized = mode in (
        "vector-specialized",
        "codegen-specialized",
        "native-specialized",
    )
    if trace is not None and not specialized and not trace.shape_dependent:
        cache.store(base_key, ck)
        disk_rung = "base"
    elif trace is not None and not specialized:
        cache.store(shape_key, ck)
        disk_rung = "shape"
    else:
        # Value-specialized traces and interpreter fallbacks: cache under
        # the value key so a different scalar value (e.g. a different
        # loop bound) recompiles.
        cache.store(value_key, ck)
        disk_rung = "value"
    if pkeys is not None:
        compilecache.store_kernel(pkeys, disk_rung, ck)
    return ck
