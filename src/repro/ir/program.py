"""The dataflow program IR over captured launch sequences.

PR 5's fusion was a peephole: it looked at *adjacent* pairs of captured
plans.  The paper's whole thesis — and the JaCe/DaCe staged-translation
architecture ROADMAP points at — is that a JIT which can see the *whole
program* can optimize across launches.  This module is that program
view: a captured :class:`~repro.graph.capture.LaunchGraph` becomes a
:class:`Program` whose nodes are the staged plans and whose edges are
def-use dependencies over array storage (read/write sets derived from
each node's trace, the same identities :mod:`repro.ir.writes` versions).

On top of the Program runs a pass pipeline (:func:`run_passes`), invoked
by ``LaunchGraph.instantiate()``:

``fuse``
    Global fusion.  A node may merge into *any* earlier compatible node
    — not just its predecessor — provided it can legally move there: the
    scan hops backwards over every node it does not conflict with
    (no write-read, read-write, or write-write overlap) and merges into
    the first candidate the element-local safety rule
    (:func:`repro.ir.fuse.fuse_decline_reason`) accepts.  A trailing
    reduction then inlines into the nearest legal producer the same way.
``dse``
    Cross-node dead-store elimination.  An array written by node *n*
    and fully overwritten by a later node *m* (unconditional identity
    store covering the extent) with no intervening reader is dead in
    *n*: its stores are dropped and the node's program re-lowered; a
    node left with no effects is disabled outright.  External readers
    are covered by an access guard that demotes the optimization.
``sink``
    Allocation sinking.  A graph-local intermediate — first touched by
    a full overwrite, user-visible only through a device handle — is
    demoted into a leased :class:`~repro.ir.arena.ScratchArena` buffer;
    the original storage is no longer written by replays.  Any external
    touch fires a guard that materializes the buffer back into the real
    array and permanently unsinks it.
``schedule``
    Perfmodel-driven scheduling.  For-nodes on a pin-capable backend
    get their worker split chosen by the roofline model
    (:func:`repro.perfmodel.schedule.choose_workers`) instead of the
    backend's fixed size heuristic.  Reductions decline — changing the
    chunk count would change the partial-fold order and break the
    bit-identical differential guarantee.

Every decision is recorded: applied counts, declines *with reasons*,
and demotions land in ``graph_stats()["passes"]`` (the fix for PR 5's
silent ``CodegenError`` drops), and a human-readable trail is kept for
``python -m repro.ir.inspect --program``.  A program where nothing is
provably safe simply declines every pass and replays exactly as today.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..core.plan import LaunchSchedule
from .codegen import CodegenError, lower_trace
from .deadstore import (
    fully_overwritten_positions,
    loaded_positions,
    overwritten_positions,
)
from .effects import snapshot_effects
from .fuse import fuse_decline_reason, fuse_plans
from .stats import analyze
from .vectorizer import IndexDomain

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..core.context import ExecutionContext
    from ..graph.capture import GraphNode

__all__ = ["ProgramNode", "Program", "SinkRecord", "run_passes"]

#: Scan hop limit for the global fusion pass — a backstop, not a tuning
#: knob (captured bodies are short; the scan is quadratic worst-case).
_MAX_FUSE_HOPS = 64


# ---------------------------------------------------------------------------
# Nodes and the program graph
# ---------------------------------------------------------------------------


class ProgramNode:
    """One dataflow node: a captured launch + its array read/write sets.

    ``reads``/``writes`` are storage-id sets (``id()`` of the resolved
    ndarray buffers — the same identities the write-version table keys
    on).  Opaque (interpreter-tier) nodes conservatively read and write
    every array argument.  ``origin`` lists the recorded node indices
    this node covers (more than one after fusion), preserving the return
    convention across passes.
    """

    __slots__ = ("gnode", "reads", "writes", "opaque", "origin", "saved")

    def __init__(self, gnode: "GraphNode", origin: list[int]):
        self.gnode = gnode
        self.origin = list(origin)
        #: ``(kernel, resolved_args, schedule, schedule_pin)`` snapshot
        #: taken before the first pass mutates this node — the demotion
        #: restore point.
        self.saved: Optional[tuple] = None
        self.refresh_rw()

    def refresh_rw(self) -> None:
        plan = self.gnode.plan
        kernel = plan.kernel
        trace = kernel.trace if kernel is not None else None
        rargs = plan.resolved_args
        if trace is None:
            every = frozenset(
                id(a) for a in rargs if isinstance(a, np.ndarray)
            )
            self.reads = every
            self.writes = every
            self.opaque = True
            return
        self.writes = frozenset(
            id(rargs[pos]) for pos in overwritten_positions(trace)
        )
        self.reads = frozenset(
            id(rargs[pos])
            for pos in loaded_positions(trace)
            if isinstance(rargs[pos], np.ndarray)
        )
        self.opaque = False

    def snapshot(self) -> None:
        """Save the pre-pass restore point (idempotent)."""
        if self.saved is None:
            plan = self.gnode.plan
            self.saved = (
                plan.kernel,
                list(plan.resolved_args),
                plan.schedule,
                plan.schedule_pin,
            )

    def restore(self) -> None:
        """Demote: put the node back to its pre-pass state."""
        if self.saved is not None:
            plan = self.gnode.plan
            plan.kernel, rargs, plan.schedule, plan.schedule_pin = self.saved
            plan.resolved_args[:] = rargs
            plan.written_ids = None
            plan.read_ids = None
            plan.effects = None
            self.saved = None
        self.gnode.disabled = False
        self.refresh_rw()

    @property
    def label(self) -> str:
        return self.gnode.plan.label

    def conflicts(self, other: "ProgramNode") -> bool:
        """May ``other`` NOT move past this node?  True when the two
        nodes touch common storage with at least one writer."""
        return bool(
            (self.writes & other.reads)
            or (self.reads & other.writes)
            or (self.writes & other.writes)
        )


class SinkRecord:
    """Bookkeeping for one sunk array: the real storage, the leased
    buffer standing in for it, and every ``(plan, position)`` whose
    resolved argument was swapped."""

    __slots__ = ("real", "buf", "swaps", "active")

    def __init__(self, real: np.ndarray, buf: np.ndarray, swaps: list):
        self.real = real
        self.buf = buf
        self.swaps = swaps
        self.active = True


class Program:
    """A captured launch sequence as a dataflow program.

    Built over the instantiation's :class:`GraphNode` copies; passes
    mutate ``self.nodes`` (merging, reordering, disabling) and record a
    human-readable ``trail``.  ``index_map()`` maps recorded node
    indices to final positions for the return convention.
    """

    def __init__(self, name: str, gnodes: list):
        self.name = name
        self.nodes: list[ProgramNode] = [
            ProgramNode(g, [i]) for i, g in enumerate(gnodes)
        ]
        self.n_recorded = len(gnodes)
        self.trail: list[str] = []
        self.fused_pairs = 0
        self.nonadjacent_fusions = 0
        self.sink_records: list[SinkRecord] = []
        #: ``(storage_ids, kind, record)`` guard requests the
        #: instantiation registers once it exists (kind: "dse"/"sink").
        self.pending_guards: list[tuple] = []
        #: One record per *applied* rewrite, carrying pre-rewrite
        #: :class:`repro.ir.effects.EffectsSummary` snapshots — the
        #: evidence the translation validator (:mod:`repro.ir.validate`)
        #: re-derives legality from after the pipeline finishes.
        self.rewrites: list[dict] = []

    # -- structure ---------------------------------------------------------
    def index_map(self) -> dict[int, int]:
        """Recorded node index → current node position."""
        out: dict[int, int] = {}
        for pos, pn in enumerate(self.nodes):
            for rec in pn.origin:
                out[rec] = pos
        return out

    def edges(self) -> list[tuple[int, int, str]]:
        """Def-use dependency edges ``(producer, consumer, kind)`` with
        ``kind`` in ``"raw"``/``"war"``/``"waw"`` (read-after-write,
        write-after-read, write-after-write), using each consumer's
        *nearest* conflicting predecessor per array."""
        out = []
        for j, b in enumerate(self.nodes):
            for i in range(j - 1, -1, -1):
                a = self.nodes[i]
                if a.writes & b.reads:
                    out.append((i, j, "raw"))
                elif a.reads & b.writes:
                    out.append((i, j, "war"))
                elif a.writes & b.writes:
                    out.append((i, j, "waw"))
        return out

    def log(self, message: str) -> None:
        self.trail.append(message)

    def describe(self) -> str:
        """Multi-line dump: nodes, rw sets, edges, and the pass trail."""
        id_names: dict[int, str] = {}

        def nm(sid: int) -> str:
            if sid not in id_names:
                id_names[sid] = f"A{len(id_names)}"
            return id_names[sid]

        lines = [f"program {self.name!r}: {len(self.nodes)} node(s)"]
        for pos, pn in enumerate(self.nodes):
            plan = pn.gnode.plan
            flags = []
            if pn.gnode.disabled:
                flags.append("disabled")
            if pn.opaque:
                flags.append("opaque")
            if plan.schedule_pin is not None:
                flags.append(
                    f"pinned({plan.schedule_pin.n_chunks} chunk(s))"
                )
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(f"  [{pos}] {plan.label}{suffix}")
            lines.append(
                f"       reads={{{', '.join(sorted(nm(i) for i in pn.reads))}}} "
                f"writes={{{', '.join(sorted(nm(i) for i in pn.writes))}}}"
            )
        edges = self.edges()
        if edges:
            lines.append("  edges:")
            for i, j, kind in edges:
                lines.append(f"    [{i}] -> [{j}]  ({kind})")
        if self.trail:
            lines.append("  pass trail:")
            lines += [f"    {entry}" for entry in self.trail]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Pass 1: global fusion
# ---------------------------------------------------------------------------


def _merge_nodes(
    a: ProgramNode, b: ProgramNode
) -> Optional[ProgramNode]:
    """Fuse plan ``b`` into plan ``a``, carrying slot bindings over."""
    from ..graph.capture import GraphNode

    merged = fuse_plans(a.gnode.plan, b.gnode.plan)
    if merged is None:
        return None
    fused_plan, pos_map = merged
    combined = GraphNode(fused_plan)
    combined.slot_map = dict(a.gnode.slot_map)
    for p, slot in b.gnode.slot_map.items():
        combined.slot_map[pos_map[p]] = slot
    return ProgramNode(combined, a.origin + b.origin)


def _fuse_pass(
    prog: Program, record: Callable, peephole: bool
) -> None:
    """Merge compatible launches; global (reordering) or adjacent-only.

    Phase A rebuilds the node list, merging each incoming for-node into
    the nearest earlier candidate it can legally reach: the backward
    scan stops at the first node the mover conflicts with.  Phase B
    inlines each reduction into the nearest legal for-producer the same
    way.  ``peephole`` restricts both to adjacency (scan depth 1) — the
    PR 5 baseline.
    """
    max_hops = 1 if peephole else _MAX_FUSE_HOPS

    def try_merge(out: list[ProgramNode], pn: ProgramNode) -> bool:
        if pn.gnode.const_slots:
            record("fuse", declined="const-slots")
            prog.log(f"fuse: decline {pn.label}: const-slots")
            return False
        first_reason = None
        hops = 0
        j = len(out) - 1
        while j >= 0 and hops < max_hops:
            cand = out[j]
            if cand.gnode.const_slots or cand.gnode.disabled:
                reason = "const-slots"
            else:
                reason = fuse_decline_reason(cand.gnode.plan, pn.gnode.plan)
            if reason is None:
                merged = _merge_nodes(cand, pn)
                if merged is not None:
                    prog.rewrites.append(
                        {
                            "kind": "fuse",
                            "label": pn.label,
                            "a": snapshot_effects(cand.gnode.plan),
                            "b": snapshot_effects(pn.gnode.plan),
                            "skipped": tuple(
                                snapshot_effects(n.gnode.plan)
                                for n in out[j + 1 :]
                                if not n.gnode.disabled
                            ),
                        }
                    )
                    out[j] = merged
                    prog.fused_pairs += 1
                    nonadj = j != len(out) - 1
                    if nonadj:
                        prog.nonadjacent_fusions += 1
                    record(
                        "fuse",
                        applied=1,
                        nonadjacent=1 if nonadj else 0,
                    )
                    prog.log(
                        f"fuse: merged {pn.label} into node {j}"
                        + (" (non-adjacent)" if nonadj else "")
                    )
                    return True
                reason = "lowering"
            if first_reason is None:
                first_reason = reason
            if cand.conflicts(pn):
                break  # pn cannot move above cand; stop the scan
            j -= 1
            hops += 1
        if first_reason is not None:
            record("fuse", declined=first_reason)
            prog.log(f"fuse: decline {pn.label}: {first_reason}")
        return False

    if peephole:
        # The PR 5 baseline: one pass, every node (for or reduce) may
        # merge into its immediate predecessor only.
        out: list[ProgramNode] = []
        for pn in prog.nodes:
            if out and try_merge(out, pn):
                continue
            out.append(pn)
        prog.nodes = out
        return

    # Phase A: for-nodes merge globally (reduces pass through untouched —
    # inlining them too early would terminate fusion chains that a later
    # independent for-node could still join).
    out = []
    for pn in prog.nodes:
        if pn.gnode.plan.construct == "for" and out and try_merge(out, pn):
            continue
        out.append(pn)
    prog.nodes = out

    # Phase B: inline each reduction into the nearest legal producer.
    changed = True
    while changed:
        changed = False
        for k, pn in enumerate(prog.nodes):
            if pn.gnode.plan.construct != "reduce":
                continue
            prefix = prog.nodes[:k]
            if prefix and try_merge(prefix, pn):
                prog.nodes = prefix + prog.nodes[k + 1 :]
                changed = True
                break


# ---------------------------------------------------------------------------
# Pass 2: cross-node dead-store elimination
# ---------------------------------------------------------------------------


def _drop_stores(pn: ProgramNode, sid: int) -> Optional[str]:
    """Rewrite ``pn``'s trace without its stores to array ``sid``.

    Returns a decline reason, or ``None`` on success.  A node left with
    no stores and no result is disabled instead of re-lowered.
    """
    import dataclasses

    plan = pn.gnode.plan
    kernel = plan.kernel
    trace = kernel.trace
    keep = tuple(
        st
        for st in trace.stores
        if id(plan.resolved_args[st.array.pos]) != sid
    )
    if len(keep) == len(trace.stores):  # pragma: no cover - caller checks
        return "no-store"
    pn.snapshot()
    if not keep and trace.result is None:
        pn.gnode.disabled = True
        pn.refresh_rw()
        return None

    # Persistent program tier: the same rewrite (original kernel digest ×
    # dropped store positions) may already be on disk from an earlier
    # instantiate — including a recorded lowering decline.
    from . import compilecache

    dropped = tuple(
        sorted(
            {
                st.array.pos
                for st in trace.stores
                if id(plan.resolved_args[st.array.pos]) == sid
            }
        )
    )
    cached = compilecache.dse_lookup(kernel, dropped)
    if cached is None:
        pn.saved = None
        return "lowering"
    if cached is not compilecache.MISSING:
        plan.kernel = cached
        plan.written_ids = None
        plan.read_ids = None
        plan.effects = None
        pn.refresh_rw()
        return None

    new_trace = _trace_with_stores(trace, keep)
    try:
        program = lower_trace(new_trace, plan.resolved_args)
    except CodegenError:
        pn.saved = None  # nothing was mutated; drop the snapshot
        compilecache.dse_record(kernel, dropped, None)
        return "lowering"
    # The native rung was compiled from the *old* trace; re-lower it
    # from the rewritten one (or drop to codegen on decline) — carrying
    # the stale compiled loop would replay the eliminated stores.
    native = None
    if kernel.native is not None:
        from .cgen import try_lower_native

        native, _ = try_lower_native(new_trace, plan.resolved_args)
    mode = kernel.mode
    if kernel.native is not None and native is None:
        mode = mode.replace("native", "codegen", 1)
    plan.kernel = dataclasses.replace(
        kernel,
        trace=new_trace,
        stats=analyze(new_trace),
        codegen=program,
        native=native,
        mode=mode if mode.endswith("-dse") else mode + "-dse",
    )
    compilecache.dse_record(kernel, dropped, plan.kernel)
    plan.written_ids = None
    plan.read_ids = None
    plan.effects = None
    pn.refresh_rw()
    return None


def _trace_with_stores(trace, keep_stores):
    from . import nodes as N

    return N.Trace(
        ndim=trace.ndim,
        stores=tuple(keep_stores),
        result=trace.result,
        array_args=trace.array_args,
        scalar_args=trace.scalar_args,
        const_args=trace.const_args,
        n_paths=trace.n_paths,
        shape_dependent=trace.shape_dependent,
        implicit_return_paths=trace.implicit_return_paths,
    )


def _dse_pass(prog: Program, record: Callable) -> None:
    """Drop stores to arrays fully overwritten before any read."""
    nodes = prog.nodes
    for i, pn in enumerate(nodes):
        if pn.gnode.disabled:
            continue
        if pn.opaque or pn.gnode.const_slots:
            continue
        plan = pn.gnode.plan
        kernel = plan.kernel
        if kernel is None or kernel.trace is None or kernel.codegen is None:
            continue
        trace = kernel.trace
        loaded = {
            id(plan.resolved_args[pos]) for pos in loaded_positions(trace)
        }
        for pos in sorted(overwritten_positions(trace)):
            arr = plan.resolved_args[pos]
            sid = id(arr)
            if sid in loaded:
                continue  # the node reads the array itself: not dead here
            killer = None
            decline = None
            between: list[ProgramNode] = []
            for m in nodes[i + 1 :]:
                if m.gnode.disabled:
                    continue
                mplan = m.gnode.plan
                if sid in m.reads or m.opaque:
                    decline = "read-before-kill"
                    break
                if sid not in m.writes:
                    between.append(m)
                    continue
                mkernel = mplan.kernel
                mtrace = mkernel.trace if mkernel is not None else None
                if mtrace is None:
                    decline = "read-before-kill"
                    break
                full = {
                    id(mplan.resolved_args[p])
                    for p in fully_overwritten_positions(mtrace)
                }
                if sid in full and tuple(mplan.dims) == arr.shape:
                    killer = m
                else:
                    decline = "partial-overwrite"
                break
            if killer is None:
                if decline is not None:
                    record("dse", declined=decline)
                continue
            victim_summary = snapshot_effects(plan)
            reason = _drop_stores(pn, sid)
            if reason is not None:
                record("dse", declined=reason)
                prog.log(f"dse: decline {pn.label}: {reason}")
                continue
            prog.rewrites.append(
                {
                    "kind": "dse",
                    "label": pn.label,
                    "sid": sid,
                    "victim": victim_summary,
                    "killer": snapshot_effects(killer.gnode.plan),
                    "between": tuple(
                        snapshot_effects(m.gnode.plan) for m in between
                    ),
                }
            )
            record("dse", applied=1)
            prog.pending_guards.append(((sid,), "dse", None))
            prog.log(
                f"dse: dropped dead store(s) to arg{pos} of {pn.label} "
                f"(killed by {killer.label})"
                + (" — node disabled" if pn.gnode.disabled else "")
            )
            if pn.gnode.disabled:
                break  # nothing left to eliminate in this node


# ---------------------------------------------------------------------------
# Pass 3: allocation sinking
# ---------------------------------------------------------------------------


def _sink_pass(
    prog: Program, ctx: "ExecutionContext", record: Callable
) -> None:
    """Demote graph-local intermediates into leased arena buffers."""
    from ..core.array import is_backend_array

    # Collect candidate arrays: written by at least one enabled node.
    candidates: dict[int, np.ndarray] = {}
    order: list[int] = []
    for pn in prog.nodes:
        if pn.gnode.disabled:
            continue
        plan = pn.gnode.plan
        for a in plan.resolved_args:
            if isinstance(a, np.ndarray) and id(a) in pn.writes:
                if id(a) not in candidates:
                    candidates[id(a)] = a
                    order.append(id(a))
    for sid in order:
        arr = candidates[sid]
        touchers: list[tuple[ProgramNode, list[int]]] = []
        legal = True
        host_visible = False
        for pn in prog.nodes:
            if pn.gnode.disabled:
                continue
            plan = pn.gnode.plan
            positions = [
                pos
                for pos, a in enumerate(plan.resolved_args)
                if a is arr
            ]
            if not positions:
                continue
            kernel = plan.kernel
            if (
                pn.opaque
                or kernel is None
                or kernel.trace is None
                or kernel.codegen is None
            ):
                legal = False
                break
            # The user-visible reference must be a device handle: host
            # code cannot then observe the storage except via to_host,
            # which fires the materialization guard.  A raw ndarray in
            # user hands could be read at any time without a seam.
            for pos in positions:
                if pos < len(plan.args) and not is_backend_array(
                    plan.args[pos]
                ):
                    host_visible = True
            touchers.append((pn, positions))
        if not legal:
            record("sink", declined="tier")
            continue
        if host_visible:
            record("sink", declined="host-visible")
            continue
        if not touchers:  # pragma: no cover - candidates come from nodes
            continue
        first, first_pos = touchers[0]
        fplan = first.gnode.plan
        ftrace = fplan.kernel.trace
        full = fully_overwritten_positions(ftrace)
        loaded = loaded_positions(ftrace)
        if (
            not all(pos in full for pos in first_pos)
            or any(pos in loaded for pos in first_pos)
            or tuple(fplan.dims) != arr.shape
        ):
            record("sink", declined="no-overwrite-first")
            prog.log(f"sink: decline {first.label}: no-overwrite-first")
            continue
        prog.rewrites.append(
            {
                "kind": "sink",
                "label": first.label,
                "sid": sid,
                "first": snapshot_effects(fplan),
                "touchers": tuple(
                    snapshot_effects(pn.gnode.plan) for pn, _ in touchers
                ),
            }
        )
        buf = ctx.arena.lease(arr.shape, arr.dtype)
        swaps: list[tuple] = []
        for pn, positions in touchers:
            pn.snapshot()
            plan = pn.gnode.plan
            for pos in positions:
                plan.resolved_args[pos] = buf
                swaps.append((plan, pos))
            plan.written_ids = None
            plan.read_ids = None
            plan.effects = None
            pn.refresh_rw()
        rec = SinkRecord(arr, buf, swaps)
        prog.sink_records.append(rec)
        prog.pending_guards.append(((sid,), "sink", rec))
        record("sink", applied=1)
        prog.log(
            f"sink: array of shape {arr.shape} demoted to an arena "
            f"buffer ({len(touchers)} node(s))"
        )


# ---------------------------------------------------------------------------
# Pass 4: perfmodel-driven scheduling
# ---------------------------------------------------------------------------


def _schedule_pass(prog: Program, record: Callable) -> None:
    """Pin modeled worker splits on pin-capable for-nodes."""
    from ..perfmodel.schedule import choose_workers

    for pn in prog.nodes:
        if pn.gnode.disabled:
            continue
        plan = pn.gnode.plan
        backend = plan.backend
        model = getattr(backend, "model", None)
        if (
            not getattr(backend, "supports_schedule_pin", False)
            or model is None
            or not hasattr(backend, "n_threads")
        ):
            record("schedule", declined="backend")
            continue
        if plan.is_reduce:
            # Re-chunking a reduction changes the partial-fold grouping
            # and therefore float rounding vs. uncaptured dispatch.
            record("schedule", declined="reduce-fold-order")
            continue
        kernel = plan.kernel
        if kernel is None or kernel.trace is None:
            record("schedule", declined="tier")
            continue
        lanes = int(np.prod(plan.dims))
        choice = choose_workers(
            model, kernel.stats, lanes, plan.ndim, backend.n_threads
        )
        w = min(choice.workers, plan.dims[0])
        if w <= 1:
            new = LaunchSchedule(
                domains=(IndexDomain.full(plan.dims),), inline=True
            )
        else:
            from ..core.launch import cpu_chunks

            tail = [(0, d) for d in plan.dims[1:]]
            new = LaunchSchedule(
                domains=tuple(
                    IndexDomain([(lo, hi)] + tail)
                    for lo, hi in cpu_chunks(plan.dims, w)
                ),
                inline=False,
            )
        old = plan.schedule
        if (
            old is not None
            and old.inline == new.inline
            and old.n_chunks == new.n_chunks
        ):
            record("schedule", declined="unchanged")
            continue
        pn.snapshot()
        plan.schedule_pin = new
        plan.schedule = new
        record("schedule", applied=1)
        prog.log(
            f"schedule: {pn.label}: "
            f"{old.n_chunks if old else '?'} chunk(s) -> {new.n_chunks} "
            f"(modeled {choice.predicted * 1e6:.1f} us)"
        )


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


def run_passes(
    prog: Program,
    ctx: "ExecutionContext",
    enabled: frozenset,
    peephole: bool,
    record: Callable,
) -> Program:
    """Run the enabled passes over ``prog``, in pipeline order.

    ``record(name, applied=..., declined=reason, ...)`` accounts every
    decision into ``graph_stats()["passes"]``.  Mutates and returns
    ``prog``.
    """
    if "fuse" in enabled:
        _fuse_pass(prog, record, peephole)
    if "dse" in enabled and not peephole:
        _dse_pass(prog, record)
    if "sink" in enabled and not peephole:
        _sink_pass(prog, ctx, record)
    if "schedule" in enabled and not peephole:
        _schedule_pass(prog, record)
    return prog
