"""IR optimizer: constant folding, algebraic identities, hash-consing.

The tracer emits one fresh node per Python operation, so an unrolled loop
like the LBM kernel's ``k*n*n + x*n + y`` (9 iterations × 3 uses) creates
dozens of structurally identical subtrees.  The vectorizer memoizes *per
node object*, so without sharing it would evaluate each copy separately.
This pass runs between tracing and caching and performs what a JIT's
early middle-end would:

* **constant folding** — operations on ``Const`` operands evaluate at
  compile time (including comparisons, boolean ops, selects and casts);
* **algebraic identities** — ``x+0``, ``x-0``, ``x*1``, ``x/1``,
  ``x**1``, ``--x``, ``!!b``, ``b & True``, ``b | False``, trivial
  selects;
* **hash-consing** — structurally identical pure subtrees are collapsed
  onto one node object, turning the trace into a maximally-shared DAG so
  the executor computes each distinct value exactly once.

``x*0 → 0`` is deliberately **not** applied: it changes results for
NaN/Inf lanes, and unlike a ``-ffast-math`` compiler we promise the
interpreter's exact semantics (the differential suite holds us to it).

Loads hash-cons like pure nodes *within* the region between stores to
their array: folding is done per-expression here, and cross-store load
reuse is already handled (conservatively invalidated) by the executor's
memoization, so sharing Load nodes is safe — two structurally equal loads
in the same trace always observe the same memory state per executor rules.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from . import nodes as N

__all__ = ["optimize_trace", "simplify", "count_nodes"]

Num = Union[int, float, bool]

_FOLD_BIN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "truediv": lambda a, b: a / b,
    "floordiv": lambda a, b: a // b,
    "mod": lambda a, b: a % b,
    "pow": lambda a, b: a**b,
    "min": min,
    "max": max,
}

_FOLD_UN = {
    "neg": lambda a: -a,
    "abs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "tanh": math.tanh,
    "floor": math.floor,
    "ceil": math.ceil,
    "sign": lambda a: (a > 0) - (a < 0),
}

_FOLD_CMP = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}

_FOLD_BOOL = {
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "xor": lambda a, b: bool(a) != bool(b),
}


def _is_const(node: N.Node, value: Optional[Num] = None) -> bool:
    if not isinstance(node, N.Const):
        return False
    if value is None:
        return True
    # bool is an int in Python; require exact numeric equality but not
    # for bool-vs-number confusion on identity checks like x*1.
    return not isinstance(node.value, bool) and node.value == value


class _Simplifier:
    """One optimization run: memoized simplification + hash-consing."""

    def __init__(self):
        self._memo: dict[int, N.Node] = {}
        self._interned: dict[tuple, N.Node] = {}

    # -- hash-consing -----------------------------------------------------
    def _key(self, node: N.Node) -> Optional[tuple]:
        if isinstance(node, N.Const):
            return ("const", type(node.value).__name__, node.value)
        if isinstance(node, N.Index):
            return ("index", node.axis)
        if isinstance(node, N.ScalarArg):
            return ("sarg", node.pos)
        if isinstance(node, N.ArrayArg):
            return ("aarg", node.pos, node.ndim)
        if isinstance(node, N.Load):
            return (
                "load",
                node.array.pos,
                tuple(id(ix) for ix in node.indices),
            )
        if isinstance(node, N.BinOp):
            return ("bin", node.op, id(node.lhs), id(node.rhs))
        if isinstance(node, N.UnOp):
            return ("un", node.op, id(node.operand))
        if isinstance(node, N.Compare):
            return ("cmp", node.op, id(node.lhs), id(node.rhs))
        if isinstance(node, N.BoolOp):
            return ("bool", node.op, id(node.lhs), id(node.rhs))
        if isinstance(node, N.Not):
            return ("not", id(node.operand))
        if isinstance(node, N.Select):
            return ("sel", id(node.cond), id(node.if_true), id(node.if_false))
        if isinstance(node, N.Cast):
            return ("cast", node.kind, id(node.operand))
        return None

    def _intern(self, node: N.Node) -> N.Node:
        key = self._key(node)
        if key is None:
            return node
        existing = self._interned.get(key)
        if existing is not None:
            return existing
        self._interned[key] = node
        return node

    # -- simplification -----------------------------------------------------
    def simplify(self, node: N.Node) -> N.Node:
        nid = id(node)
        got = self._memo.get(nid)
        if got is not None:
            return got
        out = self._intern(self._rewrite(node))
        self._memo[nid] = out
        return out

    def _rewrite(self, node: N.Node) -> N.Node:
        if isinstance(node, (N.Const, N.Index, N.ScalarArg, N.ArrayArg)):
            return node
        if isinstance(node, N.Load):
            return N.Load(node.array, [self.simplify(ix) for ix in node.indices])
        if isinstance(node, N.BinOp):
            return self._rewrite_bin(
                node.op, self.simplify(node.lhs), self.simplify(node.rhs)
            )
        if isinstance(node, N.UnOp):
            return self._rewrite_un(node.op, self.simplify(node.operand))
        if isinstance(node, N.Compare):
            lhs = self.simplify(node.lhs)
            rhs = self.simplify(node.rhs)
            if isinstance(lhs, N.Const) and isinstance(rhs, N.Const):
                return N.Const(bool(_FOLD_CMP[node.op](lhs.value, rhs.value)))
            return N.Compare(node.op, lhs, rhs)
        if isinstance(node, N.BoolOp):
            return self._rewrite_boolop(
                node.op, self.simplify(node.lhs), self.simplify(node.rhs)
            )
        if isinstance(node, N.Not):
            inner = self.simplify(node.operand)
            if isinstance(inner, N.Const):
                return N.Const(not inner.value)
            if isinstance(inner, N.Not):
                return inner.operand
            return N.Not(inner)
        if isinstance(node, N.Select):
            cond = self.simplify(node.cond)
            t = self.simplify(node.if_true)
            f = self.simplify(node.if_false)
            if isinstance(cond, N.Const):
                return t if cond.value else f
            if t is f:
                return t
            return N.Select(cond, t, f)
        if isinstance(node, N.Cast):
            inner = self.simplify(node.operand)
            if isinstance(inner, N.Const):
                value = int(inner.value) if node.kind == "int" else float(inner.value)
                return N.Const(value)
            return N.Cast(node.kind, inner)
        return node

    def _rewrite_bin(self, op: str, lhs: N.Node, rhs: N.Node) -> N.Node:
        if isinstance(lhs, N.Const) and isinstance(rhs, N.Const):
            try:
                return N.Const(_FOLD_BIN[op](lhs.value, rhs.value))
            except (ZeroDivisionError, OverflowError, ValueError):
                pass  # leave the fault to run time, like a compiler would
        if op == "add":
            if _is_const(rhs, 0):
                return lhs
            if _is_const(lhs, 0):
                return rhs
        elif op == "sub":
            if _is_const(rhs, 0):
                return lhs
        elif op == "mul":
            if _is_const(rhs, 1):
                return lhs
            if _is_const(lhs, 1):
                return rhs
        elif op == "truediv":
            if _is_const(rhs, 1):
                return lhs
        elif op == "pow":
            if _is_const(rhs, 1):
                return lhs
        elif op in ("min", "max"):
            if lhs is rhs:
                return lhs
        return N.BinOp(op, lhs, rhs)

    def _rewrite_un(self, op: str, operand: N.Node) -> N.Node:
        if isinstance(operand, N.Const):
            try:
                return N.Const(_FOLD_UN[op](operand.value))
            except (ValueError, OverflowError):
                pass
        if op == "neg" and isinstance(operand, N.UnOp) and operand.op == "neg":
            return operand.operand
        if op == "abs" and isinstance(operand, N.UnOp) and operand.op == "abs":
            return operand
        return N.UnOp(op, operand)

    def _rewrite_boolop(self, op: str, lhs: N.Node, rhs: N.Node) -> N.Node:
        if isinstance(lhs, N.Const) and isinstance(rhs, N.Const):
            return N.Const(_FOLD_BOOL[op](lhs.value, rhs.value))
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if isinstance(a, N.Const):
                if op == "and":
                    return b if a.value else N.Const(False)
                if op == "or":
                    return N.Const(True) if a.value else b
                if op == "xor":
                    return N.Not(b) if a.value else b
        if lhs is rhs and op in ("and", "or"):
            return lhs
        return N.BoolOp(op, lhs, rhs)


def simplify(node: N.Node) -> N.Node:
    """Simplify a single expression (convenience for tests)."""
    return _Simplifier().simplify(node)


def optimize_trace(trace: N.Trace) -> N.Trace:
    """Optimize every expression of a trace under one shared intern
    table, so equal subtrees across stores/guards/result collapse."""
    s = _Simplifier()
    stores = []
    for st in trace.stores:
        cond = None if st.condition is None else s.simplify(st.condition)
        if isinstance(cond, N.Const):
            if not cond.value:
                continue  # statically dead store
            cond = None  # statically always-on guard
        stores.append(
            N.Store(
                st.array,
                [s.simplify(ix) for ix in st.indices],
                s.simplify(st.value),
                cond,
            )
        )
    result = None if trace.result is None else s.simplify(trace.result)
    return N.Trace(
        ndim=trace.ndim,
        stores=stores,
        result=result,
        array_args=trace.array_args,
        scalar_args=trace.scalar_args,
        const_args=trace.const_args,
        n_paths=trace.n_paths,
        shape_dependent=trace.shape_dependent,
        implicit_return_paths=trace.implicit_return_paths,
    )


def count_nodes(trace: N.Trace) -> int:
    """Number of distinct node objects reachable from a trace (a proxy
    for executor work; drops under hash-consing)."""
    seen: set[int] = set()
    for root in trace.expressions():
        for node in N.walk(root):
            seen.add(id(node))
    return len(seen)
