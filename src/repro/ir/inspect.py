"""Kernel inspection: what did the JIT do with my kernel?

``inspect_kernel`` compiles a kernel exactly as ``parallel_for`` /
``parallel_reduce`` would and reports everything a user needs to reason
about its performance: which executor tier it landed on (and why, if it
fell), the traced IR, the per-lane work profile, and its performance
class on each modeled architecture.  The moral equivalent of Julia's
``@code_typed`` / ``@device_code`` for this model.

>>> import numpy as np
>>> from repro.ir.inspect import inspect_kernel
>>> def axpy(i, alpha, x, y):
...     x[i] += alpha * y[i]
>>> report = inspect_kernel(axpy, 1, [2.5, np.ones(4), np.ones(4)])
>>> report.mode
'codegen'
>>> report.stats.loads
2.0

The generated straight-line NumPy program (the codegen tier's artifact)
is on ``report.source`` — print it to see exactly what a launch runs.

Run as a module for the *program-level* view (the dataflow IR the graph
pass pipeline optimizes, see :mod:`repro.ir.program`)::

    python -m repro.ir.inspect --program [--passes all|peephole|none|...]

captures a CG-style iteration body, prints its dataflow graph before
any pass runs, then the optimized program with the per-pass trail.

``python -m repro.ir.inspect --native`` compiles the CG matvec and LBM
collide kernels under the native executor and prints the generated C
translation unit side by side with the codegen tier's NumPy source —
the two artifacts the differential suite holds bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..core.exceptions import PyACCError
from . import nodes as N
from .compile import CompiledKernel, compile_kernel
from .stats import TraceStats

__all__ = ["KernelReport", "inspect_kernel"]


@dataclass(frozen=True)
class KernelReport:
    """Everything the JIT knows about one compiled kernel."""

    name: str
    ndim: int
    #: "native" | "native-specialized" | "codegen" |
    #: "codegen-specialized" | "vector" | "vector-specialized" |
    #: "interpreter"
    mode: str
    n_paths: int
    stats: TraceStats
    ir: str  # formatted trace, "" in interpreter mode
    fallback_reason: Optional[str]
    specialized_on: dict  # arg position -> baked-in value
    kernel_class: str  # perf class at this ndim ("n/a" for interpreter)
    #: Verifier findings (populated when concrete dims were given).
    diagnostics: tuple = ()
    #: Generated Python/NumPy source ("" unless the codegen tier was hit).
    source: str = ""
    #: Generated C source ("" unless the native tier was hit).
    native_source: str = ""

    def explain(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"kernel {self.name!r} ({self.ndim}-D launch domain)"]
        if self.mode == "interpreter":
            lines.append("  tier: scalar interpreter (NOT vectorized)")
            if self.fallback_reason:
                lines.append(f"  reason: {self.fallback_reason}")
            lines.append(
                "  hint: see docs/PORTING.md — data-dependent loop bounds "
                "and int()/float() on traced values prevent tracing"
            )
            return "\n".join(lines)
        if self.mode.startswith("native"):
            tier = "compiled C loop (native)"
        elif self.mode.startswith("codegen"):
            tier = "generated NumPy program"
        else:
            tier = "vectorized trace"
        if self.mode.endswith("-specialized"):
            tier += f" (value-specialized on {self.specialized_on})"
        lines.append(f"  tier: {tier}")
        lines.append(
            f"  control flow: {self.n_paths} path(s)"
            + ("" if self.n_paths == 1 else " (branches traced + masked)")
        )
        lines.append(
            f"  per lane: {self.stats.loads:g} loads, {self.stats.stores:g} "
            f"stores, {self.stats.flops:g} flops "
            f"({self.stats.bytes_per_lane:g} B, intensity "
            f"{self.stats.intensity:.3f} F/B)"
        )
        lines.append(f"  performance class: {self.kernel_class}")
        if self.diagnostics:
            lines.append(f"  diagnostics: {len(self.diagnostics)} finding(s)")
            lines += [f"    {d}" for d in self.diagnostics]
        lines.append("  IR:")
        lines += [f"    {line}" for line in self.ir.splitlines()]
        if self.source:
            lines.append("  generated source:")
            lines += [f"    {line}" for line in self.source.splitlines()]
        if self.native_source:
            lines.append("  generated C (native rung):")
            lines += [
                f"    {line}" for line in self.native_source.splitlines()
            ]
        return "\n".join(lines)


def _format_trace(trace: N.Trace) -> str:
    lines = []
    for st in trace.stores:
        idx = ", ".join(N.format_node(ix) for ix in st.indices)
        guard = (
            f"  if {N.format_node(st.condition)}"
            if st.condition is not None
            else ""
        )
        lines.append(f"arg{st.array.pos}[{idx}] = {N.format_node(st.value)}{guard}")
    if trace.result is not None:
        lines.append(f"return {N.format_node(trace.result)}")
    return "\n".join(lines)


def inspect_kernel(
    fn,
    ndim_or_dims,
    args: Sequence[Any],
    *,
    reduce: bool = False,
) -> KernelReport:
    """Compile ``fn`` for the given call signature and report on it.

    ``ndim_or_dims`` is the launch rank (1/2/3) or a dims tuple whose
    length is used.  ``args`` are representative runtime arguments —
    small probe arrays are fine; only types/shapes/values-on-demand
    matter, exactly as for a real construct call.
    """
    dims: Optional[tuple] = None
    if isinstance(ndim_or_dims, (tuple, list)):
        dims = tuple(int(d) for d in ndim_or_dims)
        ndim = len(dims)
    else:
        ndim = int(ndim_or_dims)
    if ndim not in (1, 2, 3):
        raise PyACCError(f"launch rank must be 1..3, got {ndim}")
    ck: CompiledKernel = compile_kernel(fn, ndim, args, reduce=reduce)

    diagnostics: tuple = ()
    if dims is not None and ck.trace is not None:
        from .verify import verify_compiled

        diagnostics = verify_compiled(
            ck, dims, list(args), "add" if reduce else None
        )

    if ck.trace is None:
        kernel_class = "n/a"
        ir = ""
        specialized: dict = {}
        n_paths = 0
    else:
        from ..perfmodel import classify

        kernel_class = classify(ck.stats, ndim)
        ir = _format_trace(ck.trace)
        specialized = dict(ck.trace.const_args)
        n_paths = ck.trace.n_paths

    return KernelReport(
        name=getattr(fn, "__name__", repr(fn)),
        ndim=ndim,
        mode=ck.mode,
        n_paths=n_paths,
        stats=ck.stats,
        ir=ir,
        fallback_reason=ck.fallback_reason,
        specialized_on=specialized,
        kernel_class=kernel_class,
        diagnostics=diagnostics,
        source=ck.codegen.source if ck.codegen is not None else "",
        native_source=ck.native.source if ck.native is not None else "",
    )


# ---------------------------------------------------------------------------
# CLI: the program-level view
# ---------------------------------------------------------------------------


def _unsound_fuse_record(n: int) -> dict:
    """A deliberately-unsound fuse record for the validator demo.

    Claims two launches sharing one written array were fused, but the
    consumer reads the array at *non-identity* indices — exactly the
    value-flow violation per-chunk fusion cannot preserve.  The
    validator must reject it (V610).
    """
    from .effects import ArrayEffect, EffectsSummary

    sid = 0xBAD
    producer = EffectsSummary(
        kernel="producer",
        ndim=1,
        dims=(n,),
        arrays=(
            ArrayEffect(
                pos=0,
                sid=sid,
                shape=(n,),
                read_region=None,
                write_region=((0, n - 1),),
            ),
        ),
        read_ids=frozenset(),
        write_ids=frozenset({sid}),
        full_overwrite_ids=frozenset({sid}),
    )
    consumer = EffectsSummary(
        kernel="stencil_consumer",
        ndim=1,
        dims=(n,),
        arrays=(
            ArrayEffect(
                pos=0,
                sid=sid,
                shape=(n,),
                read_region=((0, n - 1),),
                write_region=None,
                identity_reads=False,  # reads a[i-1] / a[i+1]
            ),
        ),
        read_ids=frozenset({sid}),
        write_ids=frozenset(),
        full_overwrite_ids=frozenset(),
    )
    return {
        "kind": "fuse",
        "label": "demo.unsound",
        "a": producer,
        "b": consumer,
        "skipped": (),
    }


def _demo_program_describe(
    mode: str, *, analysis: bool = False, seed_unsound: bool = False
) -> str:
    """Capture the CG update body and return the program dump.

    The body is the reordered ``cg_solve_operator`` update segment —
    r-axpy, r·r dot, x-axpy — chosen because it distinguishes the fusion
    strategies: the trailing x-axpy can only merge with the r-axpy by
    hopping backwards over the reduce, which adjacent-only peephole
    fusion cannot do.

    ``analysis=True`` appends the static-analysis view: per-node
    memory-effects summaries and the translation validator's verdict on
    every applied rewrite.  ``seed_unsound=True`` additionally injects a
    deliberately-unsound fuse record to show the validator rejecting it.
    """
    import numpy as np

    import repro
    from ..apps.blas import axpy_kernel_1d, dot_kernel_1d
    from ..core import current_context, parallel_for, parallel_reduce
    from ..graph import ScalarSlot

    n = 4096
    repro.set_backend("threads")
    repro.set_graph_mode("on")
    repro.set_passes_mode(mode)
    try:
        ctx = current_context()
        dx = repro.array(np.zeros(n))
        dr = repro.array(np.ones(n))
        dp = repro.array(np.full(n, 0.5))
        ds = repro.array(np.full(n, 0.25))
        with ctx.capture() as cap:
            parallel_for(
                n, axpy_kernel_1d, ScalarSlot("neg_alpha", -0.5), dr, ds
            )
            parallel_reduce(n, dot_kernel_1d, dr, dr)
            parallel_for(n, axpy_kernel_1d, ScalarSlot("alpha", 0.5), dx, dp)
        inst = cap.graph("cg.update").instantiate(ctx)
        out = [inst.program.describe()]
        if analysis:
            from .effects import plan_effects
            from .validate import validate_program

            out += ["", "--- memory-effects summaries ---"]
            for pn in inst.program.nodes:
                if pn.gnode.disabled:
                    continue
                out.append(plan_effects(pn.gnode.plan).describe())
            out += ["", "--- translation validation ---"]
            rewrites = list(inst.program.rewrites)
            if seed_unsound:
                inst.program.rewrites.append(_unsound_fuse_record(n))
            diags = validate_program(inst.program)
            n_total = len(inst.program.rewrites)
            out.append(
                f"{n_total - len(diags)}/{n_total} applied rewrite(s) "
                "independently confirmed from effects summaries"
            )
            for d in diags:
                out.append(f"REJECTED: {d}")
            inst.program.rewrites[:] = rewrites
        return "\n".join(out)
    finally:
        repro.set_passes_mode(None)
        repro.set_graph_mode(None)
        repro.set_backend("serial")


def _demo_native_describe() -> str:
    """Compile the CG matvec and LBM collide kernels on the native rung
    and dump the generated C next to the codegen NumPy source."""
    import numpy as np

    from ..apps import cg, lbm
    from .compile import compile_kernel

    out = []
    n = 64
    rng = np.random.default_rng(0)
    probes = [
        (
            "cg.matvec_tridiag_kernel",
            cg.matvec_tridiag_kernel,
            1,
            (
                rng.random(n),
                rng.random(n),
                rng.random(n),
                rng.random(n),
                np.zeros(n),
                n,
            ),
        ),
        (
            "lbm.lbm_kernel",
            lbm.lbm_kernel,
            2,
            (
                np.zeros(9 * n * n),
                rng.random(9 * n * n) + 0.5,
                np.zeros(9 * n * n),
                0.6,
                lbm.WEIGHTS,
                lbm.CX,
                lbm.CY,
                n,
            ),
        ),
    ]
    for name, fn, ndim, args in probes:
        ck = compile_kernel(fn, ndim, args, executor="native")
        out.append(f"=== {name} (mode: {ck.mode}) ===")
        if ck.fallback_reason:
            out.append(f"  fallback trail: {ck.fallback_reason}")
        out.append("")
        out.append("--- codegen tier: generated NumPy source ---")
        out.append(ck.codegen.source if ck.codegen is not None else "(none)")
        out.append("--- native tier: generated C translation unit ---")
        out.append(ck.native.source if ck.native is not None else "(declined)")
        out.append("")
    return "\n".join(out)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.ir.inspect",
        description=(
            "Dump the dataflow program IR the graph pass pipeline "
            "optimizes (library use: repro.inspect_kernel)."
        ),
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help="capture a CG iteration body and dump its dataflow program "
        "before and after the pass pipeline",
    )
    parser.add_argument(
        "--native",
        action="store_true",
        help="compile the CG matvec and LBM collide kernels on the "
        "native executor and dump the generated C next to the codegen "
        "NumPy source",
    )
    parser.add_argument(
        "--passes",
        default="all",
        metavar="MODE",
        help="pass mode for the optimized dump: all | peephole | none | "
        "comma-list of fuse,dse,sink,schedule (default: all)",
    )
    parser.add_argument(
        "--seed-unsound",
        action="store_true",
        help="inject a deliberately-unsound fuse record into the "
        "validation demo to show the validator rejecting it (V610)",
    )
    ns = parser.parse_args(argv)
    if ns.native:
        print(_demo_native_describe())
        return 0
    if not ns.program:
        parser.error(
            "nothing to do: pass --program or --native "
            "(kernel-level inspection is the repro.inspect_kernel API)"
        )
    print("=== dataflow program (before passes) ===")
    print(_demo_program_describe("none"))
    print()
    print(f"=== optimized program (passes={ns.passes}) ===")
    print(
        _demo_program_describe(
            ns.passes, analysis=True, seed_unsound=ns.seed_unsound
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
