"""Kernel inspection: what did the JIT do with my kernel?

``inspect_kernel`` compiles a kernel exactly as ``parallel_for`` /
``parallel_reduce`` would and reports everything a user needs to reason
about its performance: which executor tier it landed on (and why, if it
fell), the traced IR, the per-lane work profile, and its performance
class on each modeled architecture.  The moral equivalent of Julia's
``@code_typed`` / ``@device_code`` for this model.

>>> import numpy as np
>>> from repro.ir.inspect import inspect_kernel
>>> def axpy(i, alpha, x, y):
...     x[i] += alpha * y[i]
>>> report = inspect_kernel(axpy, 1, [2.5, np.ones(4), np.ones(4)])
>>> report.mode
'codegen'
>>> report.stats.loads
2.0

The generated straight-line NumPy program (the codegen tier's artifact)
is on ``report.source`` — print it to see exactly what a launch runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..core.exceptions import PyACCError
from . import nodes as N
from .compile import CompiledKernel, compile_kernel
from .stats import TraceStats

__all__ = ["KernelReport", "inspect_kernel"]


@dataclass(frozen=True)
class KernelReport:
    """Everything the JIT knows about one compiled kernel."""

    name: str
    ndim: int
    #: "codegen" | "codegen-specialized" | "vector" |
    #: "vector-specialized" | "interpreter"
    mode: str
    n_paths: int
    stats: TraceStats
    ir: str  # formatted trace, "" in interpreter mode
    fallback_reason: Optional[str]
    specialized_on: dict  # arg position -> baked-in value
    kernel_class: str  # perf class at this ndim ("n/a" for interpreter)
    #: Verifier findings (populated when concrete dims were given).
    diagnostics: tuple = ()
    #: Generated Python/NumPy source ("" unless the codegen tier was hit).
    source: str = ""

    def explain(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"kernel {self.name!r} ({self.ndim}-D launch domain)"]
        if self.mode == "interpreter":
            lines.append("  tier: scalar interpreter (NOT vectorized)")
            if self.fallback_reason:
                lines.append(f"  reason: {self.fallback_reason}")
            lines.append(
                "  hint: see docs/PORTING.md — data-dependent loop bounds "
                "and int()/float() on traced values prevent tracing"
            )
            return "\n".join(lines)
        if self.mode.startswith("codegen"):
            tier = "generated NumPy program"
        else:
            tier = "vectorized trace"
        if self.mode.endswith("-specialized"):
            tier += f" (value-specialized on {self.specialized_on})"
        lines.append(f"  tier: {tier}")
        lines.append(
            f"  control flow: {self.n_paths} path(s)"
            + ("" if self.n_paths == 1 else " (branches traced + masked)")
        )
        lines.append(
            f"  per lane: {self.stats.loads:g} loads, {self.stats.stores:g} "
            f"stores, {self.stats.flops:g} flops "
            f"({self.stats.bytes_per_lane:g} B, intensity "
            f"{self.stats.intensity:.3f} F/B)"
        )
        lines.append(f"  performance class: {self.kernel_class}")
        if self.diagnostics:
            lines.append(f"  diagnostics: {len(self.diagnostics)} finding(s)")
            lines += [f"    {d}" for d in self.diagnostics]
        lines.append("  IR:")
        lines += [f"    {line}" for line in self.ir.splitlines()]
        if self.source:
            lines.append("  generated source:")
            lines += [f"    {line}" for line in self.source.splitlines()]
        return "\n".join(lines)


def _format_trace(trace: N.Trace) -> str:
    lines = []
    for st in trace.stores:
        idx = ", ".join(N.format_node(ix) for ix in st.indices)
        guard = (
            f"  if {N.format_node(st.condition)}"
            if st.condition is not None
            else ""
        )
        lines.append(f"arg{st.array.pos}[{idx}] = {N.format_node(st.value)}{guard}")
    if trace.result is not None:
        lines.append(f"return {N.format_node(trace.result)}")
    return "\n".join(lines)


def inspect_kernel(
    fn,
    ndim_or_dims,
    args: Sequence[Any],
    *,
    reduce: bool = False,
) -> KernelReport:
    """Compile ``fn`` for the given call signature and report on it.

    ``ndim_or_dims`` is the launch rank (1/2/3) or a dims tuple whose
    length is used.  ``args`` are representative runtime arguments —
    small probe arrays are fine; only types/shapes/values-on-demand
    matter, exactly as for a real construct call.
    """
    dims: Optional[tuple] = None
    if isinstance(ndim_or_dims, (tuple, list)):
        dims = tuple(int(d) for d in ndim_or_dims)
        ndim = len(dims)
    else:
        ndim = int(ndim_or_dims)
    if ndim not in (1, 2, 3):
        raise PyACCError(f"launch rank must be 1..3, got {ndim}")
    ck: CompiledKernel = compile_kernel(fn, ndim, args, reduce=reduce)

    diagnostics: tuple = ()
    if dims is not None and ck.trace is not None:
        from .verify import verify_compiled

        diagnostics = verify_compiled(
            ck, dims, list(args), "add" if reduce else None
        )

    if ck.trace is None:
        kernel_class = "n/a"
        ir = ""
        specialized: dict = {}
        n_paths = 0
    else:
        from ..perfmodel import classify

        kernel_class = classify(ck.stats, ndim)
        ir = _format_trace(ck.trace)
        specialized = dict(ck.trace.const_args)
        n_paths = ck.trace.n_paths

    return KernelReport(
        name=getattr(fn, "__name__", repr(fn)),
        ndim=ndim,
        mode=ck.mode,
        n_paths=n_paths,
        stats=ck.stats,
        ir=ir,
        fallback_reason=ck.fallback_reason,
        specialized_on=specialized,
        kernel_class=kernel_class,
        diagnostics=diagnostics,
        source=ck.codegen.source if ck.codegen is not None else "",
    )
