"""Shared dead-store analysis for the verifier and the DSE pass.

One question, asked at two scopes:

* **intra-trace** (:func:`trace_dead_stores`, behind lint rule V401) —
  is a store inside one kernel trace overwritten by a later store to the
  same element before anything can read it?
* **cross-node** (:func:`loaded_positions` / :func:`overwritten_positions`,
  consumed by :mod:`repro.ir.program`'s dead-store-elimination pass) —
  is an array written by one captured launch fully overwritten by a
  later launch in the same program before any launch reads it?

Both scopes share the soundness core below, which is deliberately
stricter than the heuristic V401 used before this module existed.  A
later store ``kill`` only kills an earlier store ``dead`` to the same
element when one of these holds:

1. ``kill`` is **unconditional** — it overwrites regardless of guard
   state; or
2. the two guards are **structurally equal** *and* no store between them
   writes an array that the guard (or the shared element indices) loads
   — otherwise the guard can evaluate differently at the two program
   points, and the "dead" store survives on lanes where the killer's
   guard flipped.  (This intervening-writer check is exactly the false
   positive the old V401 emitted on guarded stores.)

And in every case nothing may *read* the stored element between the two
stores (reads in the killer's own guard/indices/value count — they
observe the pre-kill value).
"""

from __future__ import annotations

from typing import Iterable, Optional

from . import nodes as N
from .codegen import _static_identity

__all__ = [
    "struct_eq",
    "trace_dead_stores",
    "loaded_positions",
    "overwritten_positions",
    "fully_overwritten_positions",
]


def struct_eq(a: Optional[N.Node], b: Optional[N.Node]) -> bool:
    """Structural equality of two expressions (guards/indices)."""
    if a is b:
        return True
    if a is None or b is None:
        return False
    if type(a) is not type(b):
        return False
    if isinstance(a, N.Const):
        return type(a.value) is type(b.value) and a.value == b.value
    if isinstance(a, N.Index):
        return a.axis == b.axis
    if isinstance(a, N.ScalarArg):
        return a.pos == b.pos
    if isinstance(a, N.ArrayArg):
        return a.pos == b.pos and a.ndim == b.ndim
    if isinstance(a, N.Load):
        return a.array.pos == b.array.pos and all(
            struct_eq(x, y) for x, y in zip(a.indices, b.indices)
        )
    op_a = getattr(a, "op", None)
    kind_a = getattr(a, "kind", None)
    if op_a != getattr(b, "op", None) or kind_a != getattr(b, "kind", None):
        return False
    ca, cb = a.children, b.children
    return len(ca) == len(cb) and all(struct_eq(x, y) for x, y in zip(ca, cb))


def _loads_in(roots: Iterable[N.Node]) -> set[int]:
    """Array positions loaded anywhere under the given expression roots."""
    out: set[int] = set()
    for root in roots:
        for node in N.walk(root):
            if isinstance(node, N.Load):
                out.add(node.array.pos)
    return out


def loaded_positions(trace: N.Trace) -> frozenset[int]:
    """Array argument positions this trace loads from (anywhere: store
    indices, values, guards, and the result expression).

    The walk is linear in trace size but runs per graph pass per node,
    so the result is memoized on the trace itself — and, because the
    memo slot pickles with the trace, a kernel rebuilt from the
    persistent compile cache inherits the analysis for free.
    """
    memo = getattr(trace, "_loaded_memo", None)
    if memo is None:
        memo = frozenset(_loads_in(trace.expressions()))
        trace._loaded_memo = memo
    return memo


def _store_roots(st: N.Store) -> list[N.Node]:
    roots: list[N.Node] = list(st.indices)
    roots.append(st.value)
    if st.condition is not None:
        roots.append(st.condition)
    return roots


def _reads_element_between(
    trace: N.Trace, pos: int, ia: int, ib: int
) -> bool:
    """Any load of array ``pos`` in stores ``ia+1..ib`` (their indices,
    guards and values) or in the trace result?

    The result expression is charged regardless of position: it is the
    reduce value the user observes, and staying conservative there keeps
    this analysis equivalent to the verifier's historical behavior.
    """
    roots: list[N.Node] = []
    for st in trace.stores[ia + 1 : ib + 1]:
        roots.extend(_store_roots(st))
    if trace.result is not None:
        roots.append(trace.result)
    return pos in _loads_in(roots)


def _guard_invariant_between(
    trace: N.Trace, sa: N.Store, sb: N.Store, ia: int, ib: int
) -> bool:
    """May ``sb``'s guard (struct-equal to ``sa``'s) and the shared
    indices be assumed to evaluate identically at both stores?

    False when any store strictly between them (or ``sa`` itself) writes
    an array the guard or the element indices load.
    """
    sensitive = _loads_in(
        list(sa.indices)
        + ([sa.condition] if sa.condition is not None else [])
    )
    if not sensitive:
        return True
    for st in trace.stores[ia : ib]:  # sa itself through the one before sb
        if st.array.pos in sensitive:
            return False
    return True


def trace_dead_stores(trace: N.Trace) -> list[tuple[int, int]]:
    """``(dead_index, killer_index)`` pairs of provably dead stores.

    A store is dead when a later store to the same element overwrites it
    before any read, per the rules in the module docstring.  Each dead
    store reports its earliest killer only.
    """
    out: list[tuple[int, int]] = []
    stores = trace.stores
    for i, sa in enumerate(stores):
        for j in range(i + 1, len(stores)):
            sb = stores[j]
            if sb.array.pos != sa.array.pos:
                continue
            if len(sa.indices) != len(sb.indices):
                continue
            if not all(
                struct_eq(x, y) for x, y in zip(sa.indices, sb.indices)
            ):
                continue
            if sb.condition is not None:
                if not struct_eq(sa.condition, sb.condition):
                    continue
                if not _guard_invariant_between(trace, sa, sb, i, j):
                    continue
            if _reads_element_between(trace, sa.array.pos, i, j):
                continue
            out.append((i, j))
            break
    return out


def overwritten_positions(trace: N.Trace) -> set[int]:
    """Array positions this trace stores to (any store)."""
    return {st.array.pos for st in trace.stores}


def fully_overwritten_positions(trace: N.Trace) -> set[int]:
    """Array positions the trace *fully* overwrites on every lane: at
    least one unconditional, static-identity store (``a[i] = ...`` /
    ``a[i, j] = ...`` on the launch axes).

    Combined with a launch domain that covers the array extent, such a
    store makes every prior value of the array unobservable — the
    cross-node DSE precondition.
    """
    return {
        st.array.pos
        for st in trace.stores
        if st.condition is None
        and _static_identity(st.indices, trace.ndim)
    }
