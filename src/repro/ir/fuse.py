"""Cross-launch kernel fusion for captured launch graphs.

A captured iteration body (see :mod:`repro.graph`) is a short, fixed
sequence of launches over the same index domain — CG's inner pattern is
``s = A p`` then ``dot(p, s)``, two full traversals of the same vectors.
The paper's JIT model leaves that on the table too: JACC compiles each
kernel once but still launches them separately.  This pass merges
adjacent plans of a captured graph into **one** codegen program: the
producer's stores and the consumer's expression run in a single
traversal, intermediates stay in arena scratch, and a trailing
``parallel_reduce`` is inlined into the element stage of the reduction —
CG's four-launch inner pattern becomes two.

Safety
------
Fusion changes *when* each element of the second kernel runs relative to
the first: unfused, kernel 1 finishes over the whole domain (all chunks,
all devices) before kernel 2 starts; fused, they interleave per chunk.
That reordering is invisible exactly when every cross-kernel data
dependence is element-local, so the rule is:

  for every array the two kernels **share** (same storage) where at
  least one side **writes** it, *all* accesses to that array in *both*
  traces must be static-identity indexed (``x[i]``/``x[i, j]`` on the
  launch axes).

Identity accesses touch only the element the lane owns, so per-chunk
interleaving computes bit-identical results under every backend's
decomposition (the same argument the verifier's V101 chunk-independence
analysis makes).  Arrays shared read-only, or private to one kernel, are
unconstrained — the tridiagonal matvec's ``p[i±1]`` reads fuse with a
following DOT because ``p`` is never written.

Everything else is conservative: both kernels must be codegen-tier
(fusing would otherwise *change* executor tier mid-ladder), same domain,
same backend, and the merged trace must lower — any
:class:`~repro.ir.codegen.CodegenError` declines the pair and the graph
simply replays them back-to-back.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.exceptions import KernelExecutionError
from ..core.plan import LaunchPlan
from . import nodes as N
from .codegen import CodegenError, _static_identity, lower_trace
from .compile import CompiledKernel
from .optimize import optimize_trace
from .stats import analyze

__all__ = ["fuse_plans", "fusable", "fuse_decline_reason"]


# ---------------------------------------------------------------------------
# Safety analysis
# ---------------------------------------------------------------------------


def _identity_only(trace: N.Trace, pos: int) -> bool:
    """Every load and store touching array position ``pos`` is
    static-identity indexed on the launch axes."""
    ndim = trace.ndim
    for store in trace.stores:
        if store.array.pos == pos and not _static_identity(
            store.indices, ndim
        ):
            return False
    for root in trace.expressions():
        for node in N.walk(root):
            if (
                isinstance(node, N.Load)
                and node.array.pos == pos
                and not _static_identity(node.indices, ndim)
            ):
                return False
    return True


def _written_positions(trace: N.Trace) -> set[int]:
    return {store.array.pos for store in trace.stores}


def _shared_arrays(
    a_args: list, b_args: list
) -> list[tuple[int, int]]:
    """``(pos_in_a, pos_in_b)`` pairs referring to the same ndarray
    storage (object identity — resolved args share buffers across
    backends in the simulator)."""
    pairs = []
    for bp, bval in enumerate(b_args):
        if not isinstance(bval, np.ndarray):
            continue
        for ap, aval in enumerate(a_args):
            if aval is bval:
                pairs.append((ap, bp))
                break
    return pairs


def fuse_decline_reason(a: LaunchPlan, b: LaunchPlan) -> Optional[str]:
    """Why plan ``b`` cannot fuse into plan ``a`` — ``None`` if it can.

    The static half of the fusion legality check (the final lowering can
    still decline with ``"lowering"``, which :func:`fuse_plans` reports
    by returning ``None``).  Ordering safety — whether ``b`` may *move*
    next to ``a`` — is the caller's responsibility (the program pass
    checks def-use conflicts; the old peephole used adjacency).

    Reasons: ``"reduce-producer"``, ``"dims"``, ``"backend"``,
    ``"no-kernel"``, ``"tier"``, ``"no-trace"``, ``"non-element-local"``.
    """
    if a.construct != "for":
        return "reduce-producer"  # a reduce terminates a fusion chain
    if a.dims != b.dims:
        return "dims"
    if a.backend is not b.backend:
        return "backend"
    ka, kb = a.kernel, b.kernel
    if ka is None or kb is None:
        return "no-kernel"
    if not ka.mode.startswith(("codegen", "native")):
        return "tier"
    if not kb.mode.startswith(("codegen", "native")):
        return "tier"
    if ka.trace is None or kb.trace is None or ka.codegen is None:
        return "no-trace"
    a_writes = _written_positions(ka.trace)
    b_writes = _written_positions(kb.trace)
    for ap, bp in _shared_arrays(a.resolved_args, b.resolved_args):
        if ap in a_writes or bp in b_writes:
            if not _identity_only(ka.trace, ap):
                return "non-element-local"
            if not _identity_only(kb.trace, bp):
                return "non-element-local"
    return None


def fusable(a: LaunchPlan, b: LaunchPlan) -> bool:
    """Static go/no-go for fusing plan ``b`` into plan ``a``.

    Checks everything except the final lowering (which
    :func:`fuse_plans` still guards).
    """
    return fuse_decline_reason(a, b) is None


# ---------------------------------------------------------------------------
# Trace merging
# ---------------------------------------------------------------------------


def _remap(
    node: N.Node, pos_map: dict[int, int], memo: dict[int, N.Node]
) -> N.Node:
    """Clone ``node`` with argument positions remapped, preserving the
    DAG's sharing structure (the executors memoize per node object, so a
    shared subtree must stay shared after the clone)."""
    nid = id(node)
    if nid in memo:
        return memo[nid]
    if isinstance(node, (N.Const, N.Index)):
        out: N.Node = node  # position-free nodes are safely shared
    elif isinstance(node, N.ScalarArg):
        out = N.ScalarArg(pos_map[node.pos])
    elif isinstance(node, N.ArrayArg):
        out = N.ArrayArg(pos_map[node.pos], node.ndim)
    elif isinstance(node, N.Load):
        out = N.Load(
            _remap(node.array, pos_map, memo),
            [_remap(ix, pos_map, memo) for ix in node.indices],
        )
    elif isinstance(node, N.BinOp):
        out = N.BinOp(
            node.op,
            _remap(node.lhs, pos_map, memo),
            _remap(node.rhs, pos_map, memo),
        )
    elif isinstance(node, N.UnOp):
        out = N.UnOp(node.op, _remap(node.operand, pos_map, memo))
    elif isinstance(node, N.Compare):
        out = N.Compare(
            node.op,
            _remap(node.lhs, pos_map, memo),
            _remap(node.rhs, pos_map, memo),
        )
    elif isinstance(node, N.BoolOp):
        out = N.BoolOp(
            node.op,
            _remap(node.lhs, pos_map, memo),
            _remap(node.rhs, pos_map, memo),
        )
    elif isinstance(node, N.Not):
        out = N.Not(_remap(node.operand, pos_map, memo))
    elif isinstance(node, N.Select):
        out = N.Select(
            _remap(node.cond, pos_map, memo),
            _remap(node.if_true, pos_map, memo),
            _remap(node.if_false, pos_map, memo),
        )
    elif isinstance(node, N.Cast):
        out = N.Cast(node.kind, _remap(node.operand, pos_map, memo))
    else:  # pragma: no cover - the IR is closed
        raise CodegenError(f"cannot remap IR node {type(node).__name__}")
    memo[nid] = out
    return out


def _make_fused_fn(name: str):
    """A placeholder kernel function for the fused plan: it carries the
    combined name for labels/diagnostics but never executes — fused
    kernels run their generated program only."""

    def _fused(*args):  # pragma: no cover - codegen always present
        raise KernelExecutionError(
            f"fused kernel {name!r} executes via its generated program only"
        )

    _fused.__name__ = name
    _fused.__qualname__ = name
    return _fused


def fuse_plans(
    a: LaunchPlan, b: LaunchPlan
) -> Optional[tuple[LaunchPlan, dict[int, int]]]:
    """Fuse adjacent captured plans ``a`` (a for-plan) and ``b`` into one.

    Returns ``(fused_plan, b_pos_map)`` — the fused plan is fully staged
    (backend, kernel, schedule attached) and ``b_pos_map`` maps ``b``'s
    argument positions to fused positions so the caller can relocate
    scalar-slot bindings.  Returns ``None`` when the pair is not fusable
    or the merged trace declines to lower.
    """
    if not fusable(a, b):
        return None
    from . import compilecache

    ta, tb = a.kernel.trace, b.kernel.trace

    # Union argument list: arrays dedupe on storage identity, scalars
    # always append (equal values may be distinct slots).
    fused_resolved = list(a.resolved_args)
    fused_user = list(a.args)
    pos_map: dict[int, int] = {}
    shared = dict(
        (bp, ap) for ap, bp in _shared_arrays(a.resolved_args, b.resolved_args)
    )
    for bp, bval in enumerate(b.resolved_args):
        if bp in shared:
            pos_map[bp] = shared[bp]
        else:
            pos_map[bp] = len(fused_resolved)
            fused_resolved.append(bval)
            fused_user.append(b.args[bp])

    # Persistent program tier: an earlier instantiate of this graph
    # already merged/lowered this pair (or proved it declines) — the
    # argument remapping above is recomputed (cheap, pure bookkeeping),
    # the lowering is not.
    cached = compilecache.fused_lookup(a, b, _make_fused_fn)
    if cached is None:
        return None  # recorded lowering decline
    if cached is not compilecache.MISSING:
        return _attach(cached, a, b, fused_user, fused_resolved), pos_map

    memo: dict[int, N.Node] = {}
    b_stores = [
        N.Store(
            _remap(st.array, pos_map, memo),
            [_remap(ix, pos_map, memo) for ix in st.indices],
            _remap(st.value, pos_map, memo),
            None
            if st.condition is None
            else _remap(st.condition, pos_map, memo),
        )
        for st in tb.stores
    ]
    b_result = (
        None if tb.result is None else _remap(tb.result, pos_map, memo)
    )

    merged_const = dict(ta.const_args)
    for p, v in tb.const_args.items():
        merged_const[pos_map[p]] = v
    merged = N.Trace(
        ndim=ta.ndim,
        stores=tuple(ta.stores) + tuple(b_stores),
        result=b_result,
        array_args=sorted(
            set(ta.array_args) | {pos_map[p] for p in tb.array_args}
        ),
        scalar_args=sorted(
            set(ta.scalar_args) | {pos_map[p] for p in tb.scalar_args}
        ),
        const_args=merged_const,
        n_paths=ta.n_paths + tb.n_paths,
        shape_dependent=ta.shape_dependent or tb.shape_dependent,
        implicit_return_paths=tb.implicit_return_paths,
    )
    merged = optimize_trace(merged)  # cross-kernel CSE / hash-consing
    try:
        program = lower_trace(merged, fused_resolved)
    except CodegenError:
        compilecache.fused_record(a, b, None)
        return None

    # Fused kernels inherit the native rung when both inputs held it:
    # the merged trace gets its own C translation unit (the cross-launch
    # fusion win compounds with the compiled-loop win).  A decline keeps
    # the fused codegen program — same ladder as single kernels.
    native = None
    if a.kernel.mode.startswith("native") and b.kernel.mode.startswith(
        "native"
    ):
        from .cgen import try_lower_native

        native, _ = try_lower_native(merged, fused_resolved)

    name_a = getattr(a.fn, "__name__", "kernel")
    name_b = getattr(b.fn, "__name__", "kernel")
    fused_name = (
        f"{name_a}+{name_b}"
        if a.kernel.mode in ("codegen-fused", "native-fused")
        else f"fused({name_a}+{name_b})"
    )
    kernel = CompiledKernel(
        fn=_make_fused_fn(fused_name),
        ndim=merged.ndim,
        mode="native-fused" if native is not None else "codegen-fused",
        trace=merged,
        stats=analyze(merged),
        codegen=program,
        native=native,
    )
    compilecache.fused_record(a, b, kernel, fused_name)
    return _attach(kernel, a, b, fused_user, fused_resolved), pos_map


def _attach(
    kernel: CompiledKernel,
    a: LaunchPlan,
    b: LaunchPlan,
    fused_user: list,
    fused_resolved: list,
) -> LaunchPlan:
    """Stage the fused kernel as a full LaunchPlan on ``a``'s backend."""
    fused = LaunchPlan(
        construct=b.construct,
        dims=a.dims,
        fn=kernel.fn,
        args=tuple(fused_user),
        op=b.op,
    )
    fused.backend = a.backend
    fused.resolved_args = fused_resolved
    fused.policy = a.policy
    fused.arena = a.arena
    fused.kernel = kernel
    fused.schedule = fused.backend.schedule(fused)
    return fused
