"""Per-plan memory-effects summaries and cross-launch hazard analysis.

Every optimization PR 6 introduced — global fusion, dead-store
elimination, allocation sinking — reasons about *what a launch touches*.
Until now that reasoning lived inside each pass; this module reifies it
as data.  An :class:`EffectsSummary` condenses one staged
:class:`~repro.core.plan.LaunchPlan` into affine read/write regions per
array argument, derived from the same guard-refined index-distance
lattice the kernel verifier uses (:func:`repro.ir.verify.
abstract_accesses`), plus storage-id read/write sets consistent with
:func:`repro.core.api.plan_access_ids`.

The summaries are the shared foundation for:

* the translation validator (:mod:`repro.ir.validate`), which re-derives
  the legality of every applied pass rewrite from summaries alone;
* the cross-launch diagnostics — V601 (async RAW/WAW race between
  unsynchronized ``launch(..., sync=False)`` handles, the hazard the
  original JACC OpenACC runtime manages dynamically across streams),
  V602 (graph-level dead store spanning launches) and V603
  (reduce-into-aliased-input hazard on fused nodes).

Summaries are conservative by construction: anything the affine lattice
cannot bound widens to an unbounded region, and untraced
(interpreter-tier) plans are *opaque* — assumed to read and write every
ndarray argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from . import nodes as N
from .deadstore import fully_overwritten_positions
from .diagnostics import Diagnostic, rule_severity
from .shapes import _static_identity
from .verify import _args_env, _lin_range, abstract_accesses
from .writes import hazards

__all__ = [
    "ArrayEffect",
    "EffectsSummary",
    "summarize_trace",
    "snapshot_effects",
    "plan_effects",
    "async_hazards",
    "program_dead_stores",
    "reduce_alias_hazards",
    "regions_may_overlap",
]

_INF = float("inf")

#: Unbounded per-axis interval — the region lattice's ⊤ element.
_TOP = (-_INF, _INF)


@dataclass(frozen=True)
class ArrayEffect:
    """What one launch does to one array argument.

    Regions are per-array-axis ``(lo, hi)`` interval tuples bounding the
    union of every access's index range over the launch domain (after
    guard refinement); ``None`` means the array is not accessed that
    way.  ``*_exact`` is True when every contributing access had an
    affine form — i.e. the region is tight, not widened to ⊤ on some
    axis.
    """

    pos: int
    sid: int
    shape: Optional[tuple]
    read_region: Optional[tuple]
    write_region: Optional[tuple]
    reads_exact: bool = True
    writes_exact: bool = True
    #: Every read / write is the static identity access ``a[i, j, ...]``
    #: on the launch axes — the pattern under which element-wise fusion
    #: preserves per-iteration value flow.
    identity_reads: bool = True
    identity_writes: bool = True
    #: An unconditional identity store covers the array exactly (launch
    #: dims == array shape): the launch replaces the array's contents.
    full_overwrite: bool = False

    @property
    def is_read(self) -> bool:
        return self.read_region is not None

    @property
    def is_written(self) -> bool:
        return self.write_region is not None


@dataclass(frozen=True)
class EffectsSummary:
    """Memory effects of one staged launch plan.

    ``arrays`` holds one :class:`ArrayEffect` per accessed array
    argument position; the ``*_ids`` sets are storage ids (``id()`` of
    the resolved ndarray), the same key space as
    :func:`repro.core.api.plan_access_ids` and the write-version table
    (:mod:`repro.ir.writes`).  ``opaque`` plans (no trace) read and
    write everything.
    """

    kernel: str
    ndim: int
    dims: Optional[tuple]
    arrays: tuple
    read_ids: frozenset
    write_ids: frozenset
    #: Storage ids some effect proves fully overwritten.  When one array
    #: aliases several argument positions the claim must hold for every
    #: alias's combined accesses, so aliased sids are excluded.
    full_overwrite_ids: frozenset
    #: Storage ids the reduce result expression loads, split by whether
    #: every such load is the static identity access.
    result_read_ids: frozenset = frozenset()
    result_nonidentity_ids: frozenset = frozenset()
    is_reduce: bool = False
    opaque: bool = False

    def effect(self, pos: int) -> Optional[ArrayEffect]:
        """The :class:`ArrayEffect` for argument position ``pos``."""
        for eff in self.arrays:
            if eff.pos == pos:
                return eff
        return None

    def effects_for_sid(self, sid: int) -> tuple:
        """Every :class:`ArrayEffect` whose storage is ``sid``."""
        return tuple(eff for eff in self.arrays if eff.sid == sid)

    def describe(self) -> str:
        """Human-readable dump (``python -m repro.ir.inspect --program``)."""

        def fmt_region(region):
            return "[" + ", ".join(
                f"{int(lo) if lo != -_INF else '-inf'}"
                f"..{int(hi) if hi != _INF else 'inf'}"
                for lo, hi in region
            ) + "]"

        head = f"effects {self.kernel!r}"
        if self.is_reduce:
            head += " (reduce)"
        if self.opaque:
            return head + ": opaque (no trace; reads+writes every array)"
        lines = [head + f" over dims={self.dims}"]
        for eff in self.arrays:
            parts = []
            if eff.is_read:
                tag = "identity" if eff.identity_reads else (
                    "exact" if eff.reads_exact else "widened"
                )
                parts.append(f"reads {fmt_region(eff.read_region)} ({tag})")
            if eff.is_written:
                tag = "identity" if eff.identity_writes else (
                    "exact" if eff.writes_exact else "widened"
                )
                parts.append(f"writes {fmt_region(eff.write_region)} ({tag})")
            if eff.full_overwrite:
                parts.append("full overwrite")
            lines.append(f"  arg{eff.pos}: " + "; ".join(parts))
        return "\n".join(lines)


def regions_may_overlap(a: Optional[tuple], b: Optional[tuple]) -> bool:
    """Whether two per-axis interval regions can share an element.

    ``None`` (unknown region) conservatively overlaps everything.
    """
    if a is None or b is None:
        return True
    return all(
        not (alo > bhi or blo > ahi) for (alo, ahi), (blo, bhi) in zip(a, b)
    )


def _identity_forms(forms, ndim: int) -> bool:
    """Whether affine forms are exactly ``a[i, j, ...]`` on the axes."""
    if forms is None or len(forms) != ndim:
        return False
    for ax, form in enumerate(forms):
        if form is None or form.const != 0:
            return False
        for a, c in enumerate(form.coeffs):
            if c != (1 if a == ax else 0):
                return False
    return True


def _access_region(access) -> tuple[tuple, bool]:
    """Per-axis interval of one access; second element = all-affine."""
    region = []
    exact = True
    for form in access.forms:
        if form is None:
            region.append(_TOP)
            exact = False
        else:
            region.append(_lin_range(form, access.box))
    return tuple(region), exact


def _union(a: Optional[tuple], b: tuple) -> tuple:
    if a is None:
        return b
    return tuple(
        (min(alo, blo), max(ahi, bhi)) for (alo, ahi), (blo, bhi) in zip(a, b)
    )


def summarize_trace(
    trace: N.Trace,
    dims: Optional[Sequence[int]],
    args: Sequence[Any],
    *,
    kernel: str = "<kernel>",
    is_reduce: bool = False,
) -> EffectsSummary:
    """Build the effects summary of one optimized trace.

    ``args`` are the resolved launch arguments; array storage ids come
    from them, and concrete scalar values refine the guard boxes exactly
    as the verifier sees them.
    """
    dims_t = tuple(dims) if dims is not None else None
    shapes, scalars = _args_env(args)
    accesses = abstract_accesses(
        trace, dims=dims_t, shapes=shapes, scalars=scalars, kernel=kernel
    )
    ndim = trace.ndim

    per_pos: dict[int, dict] = {}
    for acc in accesses:
        pos = acc.array.pos
        slot = per_pos.setdefault(
            pos,
            {
                "read_region": None,
                "write_region": None,
                "reads_exact": True,
                "writes_exact": True,
                "identity_reads": True,
                "identity_writes": True,
            },
        )
        region, exact = _access_region(acc)
        identity = _identity_forms(acc.forms, ndim)
        if acc.kind == "store":
            slot["write_region"] = _union(slot["write_region"], region)
            slot["writes_exact"] = slot["writes_exact"] and exact
            slot["identity_writes"] = slot["identity_writes"] and identity
        else:
            slot["read_region"] = _union(slot["read_region"], region)
            slot["reads_exact"] = slot["reads_exact"] and exact
            slot["identity_reads"] = slot["identity_reads"] and identity

    full_positions = fully_overwritten_positions(trace)
    effects = []
    for pos in sorted(per_pos):
        slot = per_pos[pos]
        arr = args[pos] if pos < len(args) else None
        sid = id(arr) if isinstance(arr, np.ndarray) else -pos - 1
        shape = shapes.get(pos)
        effects.append(
            ArrayEffect(
                pos=pos,
                sid=sid,
                shape=shape,
                full_overwrite=(
                    pos in full_positions
                    and dims_t is not None
                    and shape == dims_t
                ),
                **slot,
            )
        )
    effects_t = tuple(effects)

    read_ids = frozenset(e.sid for e in effects_t if e.is_read)
    write_ids = frozenset(e.sid for e in effects_t if e.is_written)
    full_ids = frozenset(
        e.sid
        for e in effects_t
        if e.full_overwrite
        and sum(1 for o in effects_t if o.sid == e.sid) == 1
    )

    result_reads: set[int] = set()
    result_nonident: set[int] = set()
    if trace.result is not None:
        for node in N.walk(trace.result):
            if isinstance(node, N.Load):
                pos = node.array.pos
                arr = args[pos] if pos < len(args) else None
                sid = id(arr) if isinstance(arr, np.ndarray) else -pos - 1
                result_reads.add(sid)
                if not _static_identity(node.indices, ndim):
                    result_nonident.add(sid)

    return EffectsSummary(
        kernel=kernel,
        ndim=ndim,
        dims=dims_t,
        arrays=effects_t,
        read_ids=read_ids,
        write_ids=write_ids,
        full_overwrite_ids=full_ids,
        result_read_ids=frozenset(result_reads),
        result_nonidentity_ids=frozenset(result_nonident),
        is_reduce=is_reduce or trace.result is not None,
    )


def snapshot_effects(plan) -> EffectsSummary:
    """The effects summary of a staged plan, computed fresh (uncached).

    The pass pipeline uses this to snapshot pre-rewrite effects at
    apply time — the plans mutate in place afterwards, so the cached
    :func:`plan_effects` entry would be stale evidence.
    """
    kernel = plan.kernel
    trace = kernel.trace if kernel is not None else None
    name = getattr(plan.fn, "__name__", repr(plan.fn))
    if trace is None:
        every = frozenset(
            id(a) for a in plan.resolved_args if isinstance(a, np.ndarray)
        )
        return EffectsSummary(
            kernel=name,
            ndim=len(plan.dims),
            dims=tuple(plan.dims),
            arrays=(),
            read_ids=every,
            write_ids=every,
            full_overwrite_ids=frozenset(),
            is_reduce=plan.is_reduce,
            opaque=True,
        )
    return summarize_trace(
        trace,
        plan.dims,
        plan.resolved_args,
        kernel=name,
        is_reduce=plan.is_reduce,
    )


def plan_effects(plan) -> EffectsSummary:
    """The (cached) effects summary of a staged launch plan.

    Requires the plan to have passed the compile stage.  Untraced
    (interpreter-tier) kernels yield an *opaque* summary that
    conservatively reads and writes every resolved ndarray.
    """
    if plan.effects is None:
        plan.effects = snapshot_effects(plan)
    return plan.effects


def _diag(rule: str, kernel: str, message: str, provenance: str = ""):
    return Diagnostic(
        rule=rule,
        severity=rule_severity(rule),
        kernel=kernel,
        message=message,
        provenance=provenance,
    )


def async_hazards(plan, pending_plans) -> list:
    """V601: RAW/WAW races between a new async launch and pending ones.

    ``pending_plans`` are the staged plans of still-running
    ``launch(..., sync=False)`` handles on the same context.  On the
    current single in-order stream these are ordered; the diagnostic
    flags the *portability* hazard — on a true multi-stream device the
    new launch's reads/writes race the pending writes unless the host
    synchronizes between them.
    """
    new = plan_effects(plan)
    diags = []
    for prev in pending_plans:
        if prev is plan:
            continue
        old = plan_effects(prev)
        kinds = hazards(
            old.write_ids, old.read_ids, new.write_ids, new.read_ids
        )
        kinds = tuple(k for k in kinds if k != "WAR")
        if not kinds:
            continue
        shared = old.write_ids & (new.read_ids | new.write_ids)
        diags.append(
            _diag(
                "V601",
                new.kernel,
                f"unsynchronized launch overlaps pending launch "
                f"{old.kernel!r} ({'/'.join(kinds)} on {len(shared)} shared "
                "array(s)); call synchronize() or handle.wait() between "
                "them",
                provenance=f"pending={old.kernel}",
            )
        )
    return diags


def program_dead_stores(labeled_summaries: Sequence[tuple]) -> list:
    """V602: stores fully overwritten by a later launch, never read.

    ``labeled_summaries`` is the instantiated program's enabled nodes in
    execution order as ``(label, EffectsSummary)`` pairs.  A write to
    storage ``s`` by node *i* is graph-level dead when no later node (or
    opaque plan) reads ``s`` before some node *j* fully overwrites it.
    Fires only for stores the DSE pass left behind (declined or
    disabled), as a visibility aid — it is a warning, never fatal.
    """
    diags = []
    for i, (label_i, si) in enumerate(labeled_summaries):
        if si.opaque:
            continue
        for sid in si.write_ids:
            if sid in si.read_ids:
                # A self-reading write (x[i] += ...) is not provably dead.
                continue
            for label_j, sj in labeled_summaries[i + 1:]:
                if sj.opaque or sid in sj.read_ids:
                    break
                if sid in sj.full_overwrite_ids:
                    diags.append(
                        _diag(
                            "V602",
                            label_i,
                            f"store by {label_i!r} is fully overwritten by "
                            f"{label_j!r} with no intervening read "
                            "(graph-level dead store)",
                            provenance=f"killer={label_j}",
                        )
                    )
                    break
    return diags


def reduce_alias_hazards(summary: EffectsSummary) -> list:
    """V603: a fused reduce reads, at non-identity indices, an array the
    same node writes — chunked execution would observe partial writes."""
    bad = summary.result_nonidentity_ids & summary.write_ids
    if not bad:
        return []
    return [
        _diag(
            "V603",
            summary.kernel,
            "fused reduction loads an array this node also writes at "
            "non-identity indices; chunk-parallel execution reads "
            "elements mid-overwrite",
            provenance=f"{len(bad)} aliased array(s)",
        )
    ]
