"""Tracing-JIT substrate: scalar kernels → expression IR → vectorized NumPy.

This package is the reproduction's stand-in for Julia's LLVM JIT (see
DESIGN.md §2).  Public surface:

* :func:`repro.ir.compile.compile_kernel` — the specialization ladder.
* :mod:`repro.ir.intrinsics` — portable math usable inside kernels.
* :class:`repro.ir.vectorizer.IndexDomain` — launch sub-domains.
"""

from .compile import (
    CompiledKernel,
    KernelCache,
    cache_info,
    clear_cache,
    compile_kernel,
)
from .inspect import KernelReport, inspect_kernel
from .vectorizer import IndexDomain

__all__ = [
    "CompiledKernel",
    "IndexDomain",
    "KernelCache",
    "KernelReport",
    "inspect_kernel",
    "cache_info",
    "clear_cache",
    "compile_kernel",
]
