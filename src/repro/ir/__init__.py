"""Tracing-JIT substrate: scalar kernels → expression IR → vectorized NumPy.

This package is the reproduction's stand-in for Julia's LLVM JIT (see
DESIGN.md §2).  Public surface:

* :func:`repro.ir.compile.compile_kernel` — the specialization ladder.
* :mod:`repro.ir.intrinsics` — portable math usable inside kernels.
* :class:`repro.ir.vectorizer.IndexDomain` — launch sub-domains.
* :mod:`repro.ir.codegen` — the straight-line NumPy code generator (the
  default executor tier) and :mod:`repro.ir.arena`, its scratch-buffer
  pool; :func:`repro.ir.compile.executor_mode` /
  :func:`~repro.ir.compile.set_executor_mode` select the tier.
* :mod:`repro.ir.cgen` / :mod:`repro.ir.nativecache` — the native rung
  above codegen: traces lowered to C, compiled with the system compiler
  into content-addressed cached shared objects
  (``PYACC_EXECUTOR=native``); :func:`repro.ir.nativecache.native_stats`
  reports compiles/cache hits/declines.
* :mod:`repro.ir.verify` — the static kernel verifier (races, bounds,
  reduction purity) and its enforcement-mode controls.
* :mod:`repro.ir.effects` / :mod:`repro.ir.validate` — per-plan
  memory-effects summaries and the translation validator that
  re-derives every applied program rewrite from them
  (``PYACC_VALIDATE`` selects enforcement).
"""

from .arena import ScratchArena, default_arena
from .arena import global_stats as arena_stats
from .compile import (
    CompiledKernel,
    KernelCache,
    cache_info,
    clear_cache,
    compile_kernel,
    executor_mode,
    set_executor_mode,
)
from .diagnostics import Diagnostic, KernelVerificationWarning
from .inspect import KernelReport, inspect_kernel
from .nativecache import native_stats
from .validate import (
    set_validate_mode,
    validate_mode,
    verify_reduce_op,
)
from .vectorizer import IndexDomain
from .verify import (
    set_verify_mode,
    suppress,
    verify_kernel,
    verify_mode,
    verify_trace,
)

__all__ = [
    "CompiledKernel",
    "Diagnostic",
    "IndexDomain",
    "KernelCache",
    "KernelReport",
    "KernelVerificationWarning",
    "ScratchArena",
    "arena_stats",
    "default_arena",
    "inspect_kernel",
    "cache_info",
    "clear_cache",
    "compile_kernel",
    "executor_mode",
    "native_stats",
    "set_executor_mode",
    "set_validate_mode",
    "set_verify_mode",
    "suppress",
    "validate_mode",
    "verify_kernel",
    "verify_mode",
    "verify_reduce_op",
    "verify_trace",
]
