"""Tracing-JIT substrate: scalar kernels → expression IR → vectorized NumPy.

This package is the reproduction's stand-in for Julia's LLVM JIT (see
DESIGN.md §2).  Public surface:

* :func:`repro.ir.compile.compile_kernel` — the specialization ladder.
* :mod:`repro.ir.intrinsics` — portable math usable inside kernels.
* :class:`repro.ir.vectorizer.IndexDomain` — launch sub-domains.
* :mod:`repro.ir.verify` — the static kernel verifier (races, bounds,
  reduction purity) and its enforcement-mode controls.
"""

from .compile import (
    CompiledKernel,
    KernelCache,
    cache_info,
    clear_cache,
    compile_kernel,
)
from .diagnostics import Diagnostic, KernelVerificationWarning
from .inspect import KernelReport, inspect_kernel
from .vectorizer import IndexDomain
from .verify import (
    set_verify_mode,
    suppress,
    verify_kernel,
    verify_mode,
    verify_trace,
)

__all__ = [
    "CompiledKernel",
    "Diagnostic",
    "IndexDomain",
    "KernelCache",
    "KernelReport",
    "KernelVerificationWarning",
    "inspect_kernel",
    "cache_info",
    "clear_cache",
    "compile_kernel",
    "set_verify_mode",
    "suppress",
    "verify_kernel",
    "verify_mode",
    "verify_trace",
]
