"""Static work/traffic analysis of kernel traces.

The analytic performance model (:mod:`repro.perfmodel`) needs, per launch,
how many bytes a kernel moves and how many floating-point operations it
performs *per lane*.  Because the tracer produces a complete expression
DAG, both are compile-time properties of the trace: count distinct loads,
stores and arithmetic nodes once (CSE-shared values count once, exactly as
a register-allocated kernel would execute them).

Branch-guarded work is weighted by a *coverage* heuristic: the paper's
kernels guard either boundary lanes (almost-always-true interior guards)
or single lanes (``i == 0``).  We charge guarded stores fully when the
guard is an interior-style inequality and proportionally (treated as ~0
coverage) when the guard is a single-lane equality.  The heuristic only
affects modeled time, never computed results, and for the paper's kernels
the boundary contribution is negligible at benchmark sizes anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import nodes as N

__all__ = ["TraceStats", "analyze"]

_ELEM_BYTES = 8  # all paper workloads are double precision

#: Flop weight per operator.  Division and transcendental functions are
#: charged more than one flop, roughly matching instruction throughput
#: ratios on the modeled hardware.
_FLOP_WEIGHT = {
    "add": 1.0,
    "sub": 1.0,
    "mul": 1.0,
    "truediv": 4.0,
    "floordiv": 4.0,
    "mod": 4.0,
    "pow": 8.0,
    "min": 1.0,
    "max": 1.0,
    "neg": 1.0,
    "abs": 1.0,
    "sqrt": 8.0,
    "exp": 16.0,
    "log": 16.0,
    "sin": 16.0,
    "cos": 16.0,
    "tan": 24.0,
    "tanh": 20.0,
    "floor": 1.0,
    "ceil": 1.0,
    "sign": 2.0,
}


@dataclass
class TraceStats:
    """Per-lane work and traffic of a kernel trace.

    Attributes
    ----------
    loads / stores:
        Number of distinct element loads / stores per lane.
    flops:
        Weighted floating-point operations per lane.
    bytes_per_lane:
        ``(loads + stores) * 8`` — the DRAM traffic a cache-less execution
        of one lane generates; the roofline model multiplies by lane count.
    n_paths:
        Control-flow paths in the trace (diagnostic).
    is_reduction:
        Whether the trace produces a per-lane value to be folded.
    arrays_touched:
        Distinct array argument positions referenced.
    """

    loads: float = 0.0
    stores: float = 0.0
    flops: float = 0.0
    n_paths: int = 1
    is_reduction: bool = False
    arrays_touched: frozenset[int] = field(default_factory=frozenset)

    @property
    def bytes_per_lane(self) -> float:
        return (self.loads + self.stores) * _ELEM_BYTES

    @property
    def intensity(self) -> float:
        """Arithmetic intensity in flop/byte (0 if no traffic)."""
        b = self.bytes_per_lane
        return self.flops / b if b else 0.0


def _guard_coverage(cond: N.Node | None) -> float:
    """Fraction of lanes a store guard is expected to cover.

    ``None`` → 1.0.  A conjunction of inequalities (interior guard) →
    ~1.0.  Anything involving an equality on an index → ~0.0 (single
    lane / boundary row).  Mixed guards take the minimum of their parts.
    """
    if cond is None:
        return 1.0
    if isinstance(cond, N.Compare):
        return 0.0 if cond.op == "eq" else 1.0
    if isinstance(cond, N.BoolOp):
        a = _guard_coverage(cond.lhs)
        b = _guard_coverage(cond.rhs)
        if cond.op == "and":
            return min(a, b)
        return max(a, b)
    if isinstance(cond, N.Not):
        inner = cond.operand
        if isinstance(inner, N.Compare) and inner.op == "eq":
            return 1.0  # != covers almost everything
        return 1.0 - _guard_coverage(inner)
    return 1.0


def analyze(trace: N.Trace) -> TraceStats:
    """Compute :class:`TraceStats` for a trace.

    Expressions shared between stores / the result are counted once
    (the DAG is walked with per-object dedup via :func:`repro.ir.nodes.walk`).
    Guarded stores and their value expressions are weighted by
    :func:`_guard_coverage`.
    """
    loads = 0.0
    stores = 0.0
    flops = 0.0
    arrays: set[int] = set()
    seen: set[int] = set()

    def count_expr(root: N.Node, weight: float) -> None:
        nonlocal loads, flops
        for node in N.walk(root):
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, N.Load):
                loads += weight
                arrays.add(node.array.pos)
            elif isinstance(node, (N.BinOp, N.UnOp)):
                flops += weight * _FLOP_WEIGHT[node.op]
            elif isinstance(node, (N.Compare, N.Not, N.BoolOp)):
                flops += weight * 1.0
            elif isinstance(node, N.Select):
                flops += weight * 1.0

    # Collect (weight, expression) pairs first and count in descending
    # weight order: hash-consed subtrees shared between a full-weight
    # consumer (interior store, guard, result) and a ~zero-weight one
    # (boundary store) must be charged at the highest weight that
    # actually evaluates them.
    work: list[tuple[float, N.Node]] = []
    for st in trace.stores:
        w = _guard_coverage(st.condition)
        work.append((w, st.value))
        for ix in st.indices:
            work.append((w, ix))
        if st.condition is not None:
            work.append((1.0, st.condition))  # guards evaluate everywhere
        stores += w
        arrays.add(st.array.pos)
    if trace.result is not None:
        work.append((1.0, trace.result))
    for w, expr in sorted(work, key=lambda p: -p[0]):
        count_expr(expr, w)

    return TraceStats(
        loads=loads,
        stores=stores,
        flops=flops,
        n_paths=trace.n_paths,
        is_reduction=trace.result is not None,
        arrays_touched=frozenset(arrays),
    )
