"""Structured diagnostics for the kernel verifier.

The verifier (:mod:`repro.ir.verify`) analyzes a traced kernel against
the parallel contract of ``parallel_for``/``parallel_reduce`` and emits
:class:`Diagnostic` records — one per violated rule, carrying the rule
id, severity, the kernel's name and a formatted provenance snippet of the
offending IR.  Severity drives enforcement (see ``docs/API.md``, "Kernel
verification"):

* ``error`` — the kernel breaks the parallel contract (a cross-iteration
  race, a provable out-of-bounds access, an impure reduction).  In
  ``error`` mode these raise
  :class:`~repro.core.exceptions.KernelVerificationError`; the lint CLI
  exits nonzero on them.
* ``warning`` — lint-grade findings (dead stores, unused array
  arguments, float equality guards).  Reported, never fatal.
* ``info`` — notes (e.g. a kernel that fell to the interpreter and could
  not be analyzed).

The rule catalog below is the single source of truth for ids and default
severities; ``docs/API.md`` documents each rule with examples.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = [
    "Diagnostic",
    "KernelVerificationWarning",
    "RULES",
    "RULE_EXAMPLES",
    "SEVERITIES",
    "rule_severity",
    "rule_description",
    "counters",
    "DiagnosticCounters",
]

#: Severities in decreasing order of gravity.
SEVERITIES = ("error", "warning", "info")

#: Rule catalog: id -> (default severity, one-line description).
RULES: dict[str, tuple[str, str]] = {
    "V101": (
        "error",
        "cross-iteration race: two stores to the same array may target "
        "the same element from distinct iterations",
    ),
    "V102": (
        "error",
        "cross-iteration race: a store and a load on the same array may "
        "alias across distinct iterations",
    ),
    "V201": (
        "error",
        "out-of-bounds access: an index can leave the array extent for "
        "some iteration of the launch domain",
    ),
    "V301": (
        "error",
        "impure reduction: a parallel_reduce kernel stores into an "
        "array argument",
    ),
    "V302": (
        "error",
        "reduction default mismatch: a path returns no value and the "
        "implicit 0.0 is not neutral for the combine op",
    ),
    "V401": (
        "warning",
        "dead store: unconditionally overwritten by a later store to "
        "the same element with no intervening read",
    ),
    "V402": (
        "warning",
        "unused array argument: passed to the kernel but never loaded "
        "or stored",
    ),
    "V403": (
        "warning",
        "float equality guard: branching on == / != against a float "
        "constant is fragile",
    ),
    "V311": (
        "error",
        "non-associative reduce operator: the combine op fails the "
        "associativity probe, so chunked/parallel folds diverge from "
        "the sequential result",
    ),
    "V312": (
        "error",
        "wrong neutral element: op(neutral, x) != x for the declared "
        "reduce identity, so empty chunks poison the fold",
    ),
    "V501": (
        "info",
        "capture-unsafe kernel: the trace depends on the launch shape "
        "or specializes on scalar values, so graph replay with "
        "different bindings may be stale",
    ),
    "V601": (
        "error",
        "cross-launch race: an unsynchronized launch(..., sync=False) "
        "reads or overwrites arrays a still-pending launch writes "
        "(RAW/WAW) without an intervening synchronize()",
    ),
    "V602": (
        "warning",
        "graph-level dead store: a launch's writes are fully "
        "overwritten by a later launch with no intervening read, "
        "spanning launch boundaries",
    ),
    "V603": (
        "error",
        "reduce-into-aliased-input hazard: a fused node's reduction "
        "reads an array the same node writes at non-identity indices, "
        "so chunked execution observes partial writes",
    ),
    "V610": (
        "error",
        "translation validation failure: an applied fusion/DSE/sinking "
        "rewrite is not independently provable from the memory-effects "
        "summaries alone",
    ),
    "V701": (
        "info",
        "silent native decline: the kernel is codegen-eligible but the "
        "native C rung declined it (unsupported op/dtype or missing "
        "compiler), so PYACC_EXECUTOR=native silently runs it one rung "
        "down",
    ),
    "V901": (
        "info",
        "kernel not analyzable: no IR trace (interpreter tier) or no "
        "probe arguments",
    ),
}

#: Minimal examples per rule, printed by ``python -m repro.lint
#: --explain <rule>``.  Each shows code (or an API sequence) that
#: triggers the rule.
RULE_EXAMPLES: dict[str, str] = {
    "V101": (
        "def k(i, x):\n"
        "    x[0] = i          # every iteration stores element 0"
    ),
    "V102": (
        "def k(i, x):\n"
        "    x[i] = x[i + 1]   # iteration i loads what i+1 stores"
    ),
    "V201": (
        "def k(i, x):\n"
        "    x[i + 1] = 0.0    # last iteration steps past the extent"
    ),
    "V301": (
        "def dot(i, x, y):\n"
        "    x[i] = 0.0        # reduce kernels must not store\n"
        "    return x[i] * y[i]"
    ),
    "V302": (
        "def m(i, x):\n"
        "    if x[i] > 0:\n"
        "        return x[i]   # missing else-path returns 0.0,\n"
        "                      # not neutral for op='min'"
    ),
    "V401": (
        "def k(i, x):\n"
        "    x[i] = 1.0        # dead: overwritten below, never read\n"
        "    x[i] = 2.0"
    ),
    "V402": (
        "def k(i, x, unused):\n"
        "    x[i] = 2.0        # 'unused' is never loaded or stored"
    ),
    "V403": (
        "def k(i, x):\n"
        "    if x[i] == 0.3:   # float equality is fragile\n"
        "        x[i] = 0.0"
    ),
    "V311": (
        "repro.parallel_reduce(n, lambda i, x: x[i], x,\n"
        "                      op=lambda a, b: a - b)  # (a-b)-c != a-(b-c)"
    ),
    "V312": (
        "repro.parallel_reduce(n, lambda i, x: x[i], x,\n"
        "                      op=max_op, neutral=1.0)  # max(1.0, 0.5) != 0.5"
    ),
    "V501": (
        "def k(i, x, n):\n"
        "    if i < n - 1:     # trace specialized on the value of n;\n"
        "        x[i] = x[i + 1]  # replaying with a new n is stale"
    ),
    "V601": (
        "h1 = repro.launch('for', n, writer, x, sync=False)\n"
        "h2 = repro.launch('for', n, reader, x, y, sync=False)\n"
        "# reader consumes x while writer may still be in flight;\n"
        "# call repro.synchronize() (or h1.wait()) between them"
    ),
    "V602": (
        "with ctx.capture('g'):\n"
        "    repro.parallel_for(n, fill_a, tmp)   # dead: fully\n"
        "    repro.parallel_for(n, fill_b, tmp)   # overwritten, never read"
    ),
    "V603": (
        "# fusion inlined a reduce into a producer that writes x:\n"
        "def fused(i, x):\n"
        "    x[i] = 2.0 * x[i]\n"
        "    return x[i - 1]   # reads a neighbor mid-overwrite"
    ),
    "V610": (
        "# a pass claims 'fuse(a, b)' but the effects summaries show\n"
        "# a hopped-over node writes an array b reads — the rewrite\n"
        "# is declined and the program degrades to unfused replay"
    ),
    "V701": (
        "def k(i, x):\n"
        "    x[i] = x[i] ** 2  # pow has no bit-exact C equivalent:\n"
        "                      # native declines (op:pow), codegen runs"
    ),
    "V901": (
        "def k(i, x):\n"
        "    print(x[i])       # side effect forces the interpreter tier"
    ),
}


def rule_severity(rule: str) -> str:
    """Default severity of a catalog rule (``info`` for unknown ids)."""
    return RULES.get(rule, ("info", ""))[0]


def rule_description(rule: str) -> str:
    """One-line description of a catalog rule (empty for unknown ids)."""
    return RULES.get(rule, ("", ""))[1]


class KernelVerificationWarning(UserWarning):
    """Python warning category used by the ``warn`` enforcement mode."""


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the kernel verifier.

    Attributes
    ----------
    rule:
        Catalog id (``V101`` ... ``V901``), see :data:`RULES`.
    severity:
        ``"error"``, ``"warning"`` or ``"info"``.
    kernel:
        Name of the kernel function the finding is about.
    message:
        Human-readable explanation, self-contained.
    provenance:
        Formatted IR snippet(s) locating the finding (store/load
        expressions as printed by :func:`repro.ir.nodes.format_node`).
    """

    rule: str
    severity: str
    kernel: str
    message: str
    provenance: str = ""

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def __str__(self) -> str:
        loc = f" [{self.provenance}]" if self.provenance else ""
        return f"{self.rule} {self.severity} ({self.kernel}): {self.message}{loc}"


@dataclass
class DiagnosticCounters:
    """Process-wide tally of verifier activity.

    The bench harness snapshots these into its JSON results so verifier
    noise (new warnings/errors on the paper workloads) is visible in the
    perf trajectory alongside the timing numbers.
    """

    kernels_verified: int = 0
    errors: int = 0
    warnings: int = 0
    infos: int = 0
    by_rule: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, diagnostics) -> None:
        """Count one fresh verification and its findings."""
        with self._lock:
            self.kernels_verified += 1
            for d in diagnostics:
                if d.severity == "error":
                    self.errors += 1
                elif d.severity == "warning":
                    self.warnings += 1
                else:
                    self.infos += 1
                self.by_rule[d.rule] = self.by_rule.get(d.rule, 0) + 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "kernels_verified": self.kernels_verified,
                "errors": self.errors,
                "warnings": self.warnings,
                "infos": self.infos,
                "by_rule": dict(sorted(self.by_rule.items())),
            }

    def reset(self) -> None:
        with self._lock:
            self.kernels_verified = 0
            self.errors = 0
            self.warnings = 0
            self.infos = 0
            self.by_rule.clear()


#: The process-wide counters instance (see :class:`DiagnosticCounters`).
counters = DiagnosticCounters()
