"""Structured diagnostics for the kernel verifier.

The verifier (:mod:`repro.ir.verify`) analyzes a traced kernel against
the parallel contract of ``parallel_for``/``parallel_reduce`` and emits
:class:`Diagnostic` records — one per violated rule, carrying the rule
id, severity, the kernel's name and a formatted provenance snippet of the
offending IR.  Severity drives enforcement (see ``docs/API.md``, "Kernel
verification"):

* ``error`` — the kernel breaks the parallel contract (a cross-iteration
  race, a provable out-of-bounds access, an impure reduction).  In
  ``error`` mode these raise
  :class:`~repro.core.exceptions.KernelVerificationError`; the lint CLI
  exits nonzero on them.
* ``warning`` — lint-grade findings (dead stores, unused array
  arguments, float equality guards).  Reported, never fatal.
* ``info`` — notes (e.g. a kernel that fell to the interpreter and could
  not be analyzed).

The rule catalog below is the single source of truth for ids and default
severities; ``docs/API.md`` documents each rule with examples.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = [
    "Diagnostic",
    "KernelVerificationWarning",
    "RULES",
    "SEVERITIES",
    "rule_severity",
    "counters",
    "DiagnosticCounters",
]

#: Severities in decreasing order of gravity.
SEVERITIES = ("error", "warning", "info")

#: Rule catalog: id -> (default severity, one-line description).
RULES: dict[str, tuple[str, str]] = {
    "V101": (
        "error",
        "cross-iteration race: two stores to the same array may target "
        "the same element from distinct iterations",
    ),
    "V102": (
        "error",
        "cross-iteration race: a store and a load on the same array may "
        "alias across distinct iterations",
    ),
    "V201": (
        "error",
        "out-of-bounds access: an index can leave the array extent for "
        "some iteration of the launch domain",
    ),
    "V301": (
        "error",
        "impure reduction: a parallel_reduce kernel stores into an "
        "array argument",
    ),
    "V302": (
        "error",
        "reduction default mismatch: a path returns no value and the "
        "implicit 0.0 is not neutral for the combine op",
    ),
    "V401": (
        "warning",
        "dead store: unconditionally overwritten by a later store to "
        "the same element with no intervening read",
    ),
    "V402": (
        "warning",
        "unused array argument: passed to the kernel but never loaded "
        "or stored",
    ),
    "V403": (
        "warning",
        "float equality guard: branching on == / != against a float "
        "constant is fragile",
    ),
    "V901": (
        "info",
        "kernel not analyzable: no IR trace (interpreter tier) or no "
        "probe arguments",
    ),
}


def rule_severity(rule: str) -> str:
    """Default severity of a catalog rule (``info`` for unknown ids)."""
    return RULES.get(rule, ("info", ""))[0]


class KernelVerificationWarning(UserWarning):
    """Python warning category used by the ``warn`` enforcement mode."""


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the kernel verifier.

    Attributes
    ----------
    rule:
        Catalog id (``V101`` ... ``V901``), see :data:`RULES`.
    severity:
        ``"error"``, ``"warning"`` or ``"info"``.
    kernel:
        Name of the kernel function the finding is about.
    message:
        Human-readable explanation, self-contained.
    provenance:
        Formatted IR snippet(s) locating the finding (store/load
        expressions as printed by :func:`repro.ir.nodes.format_node`).
    """

    rule: str
    severity: str
    kernel: str
    message: str
    provenance: str = ""

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def __str__(self) -> str:
        loc = f" [{self.provenance}]" if self.provenance else ""
        return f"{self.rule} {self.severity} ({self.kernel}): {self.message}{loc}"


@dataclass
class DiagnosticCounters:
    """Process-wide tally of verifier activity.

    The bench harness snapshots these into its JSON results so verifier
    noise (new warnings/errors on the paper workloads) is visible in the
    perf trajectory alongside the timing numbers.
    """

    kernels_verified: int = 0
    errors: int = 0
    warnings: int = 0
    infos: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, diagnostics) -> None:
        """Count one fresh verification and its findings."""
        with self._lock:
            self.kernels_verified += 1
            for d in diagnostics:
                if d.severity == "error":
                    self.errors += 1
                elif d.severity == "warning":
                    self.warnings += 1
                else:
                    self.infos += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "kernels_verified": self.kernels_verified,
                "errors": self.errors,
                "warnings": self.warnings,
                "infos": self.infos,
            }

    def reset(self) -> None:
        with self._lock:
            self.kernels_verified = 0
            self.errors = 0
            self.warnings = 0
            self.infos = 0


#: The process-wide counters instance (see :class:`DiagnosticCounters`).
counters = DiagnosticCounters()
