"""Static kernel verifier: race, bounds and reduction-purity analysis.

``parallel_for``/``parallel_reduce`` carry an implicit contract the paper
leaves entirely to the programmer: every iteration of a for-kernel must
be independent of every other, every access must stay inside its array,
and a reduce body must be pure.  Because the tracing JIT already lowers
kernels to a complete expression DAG (:mod:`repro.ir.nodes`), we can
check that contract *statically*, before a plan ever reaches a backend —
something neither Julia JACC nor a C++ template model can do cheaply.

The analysis core is a small **symbolic index-distance lattice**: every
index expression is abstracted to an affine form ``c0 + Σ c_a · i_a``
over the launch axes (with scalar arguments bound to their concrete
launch values, mirroring the JIT's value specialization), or to ⊤ when
it is not affine.  Guard conditions refine each axis to an interval (and
can pin an access to a single iteration, e.g. ``if i == 0:``).  Two
accesses on the same array then race iff the difference of their forms
can be zero for two *distinct* in-range iteration tuples — decided by
interval range tests, a gcd divisibility test and a mixed-radix
dominance test for injectivity (which is what proves the paper's
flattened LBM indexing ``k·n² + x·n + y`` race-free).

Checked rules (catalog in :mod:`repro.ir.diagnostics`):

* ``V101``/``V102`` — cross-iteration store/store and store/load races;
* ``V201`` — out-of-bounds accesses relative to the launch domain and
  the known array extents;
* ``V301``/``V302`` — reduction impurity (stores in a reduce body;
  an implicit ``0.0`` fall-through return under a non-``add`` combine);
* ``V401``/``V402``/``V403`` — lint: dead stores, unused array
  arguments, float equality guards.

Enforcement is selected by the ``verify`` preference
(``off | warn | error``, default ``warn`` — see
:mod:`repro.core.preferences`), overridable per process with
:func:`set_verify_mode` / :func:`verify_mode`.  ``error`` raises
:class:`~repro.core.exceptions.KernelVerificationError` at the construct
call site; ``warn`` emits one :class:`KernelVerificationWarning` per
fresh finding.  Individual rules can be suppressed per kernel with the
:func:`suppress` decorator.
"""

from __future__ import annotations

import math
import numbers
import warnings
from contextlib import contextmanager
from typing import Any, Optional, Sequence

import numpy as np

from ..core.exceptions import KernelVerificationError
from ..core.preferences import VERIFY_MODES, resolve_verify_mode
from . import nodes as N
from .diagnostics import (
    Diagnostic,
    KernelVerificationWarning,
    RULES,
    counters,
)

__all__ = [
    "verify_trace",
    "verify_compiled",
    "verify_kernel",
    "verify_launch",
    "abstract_accesses",
    "active_verify_mode",
    "set_verify_mode",
    "verify_mode",
    "suppress",
]

_INF = float("inf")


# ---------------------------------------------------------------------------
# Enforcement-mode selection
# ---------------------------------------------------------------------------

_MODE_OVERRIDE: Optional[str] = None
_MODE_RESOLVED: Optional[str] = None


def active_verify_mode() -> str:
    """The enforcement mode in effect: process override, else the
    ``verify`` preference (env ``PYACC_VERIFY`` > file > ``"warn"``)."""
    global _MODE_RESOLVED
    if _MODE_OVERRIDE is not None:
        return _MODE_OVERRIDE
    if _MODE_RESOLVED is None:
        _MODE_RESOLVED = resolve_verify_mode()
    return _MODE_RESOLVED


def set_verify_mode(mode: Optional[str]) -> Optional[str]:
    """Set the process-wide enforcement mode (``off | warn | error``).

    ``None`` drops the override so the next construct re-resolves the
    Preferences mechanism.  Returns the previous override.
    """
    global _MODE_OVERRIDE, _MODE_RESOLVED
    if mode is not None and mode not in VERIFY_MODES:
        raise ValueError(
            f"unknown verify mode {mode!r}; expected one of {VERIFY_MODES}"
        )
    previous = _MODE_OVERRIDE
    _MODE_OVERRIDE = mode
    _MODE_RESOLVED = None
    return previous


@contextmanager
def verify_mode(mode: str):
    """Scope an enforcement mode: ``with verify_mode("error"): ...``."""
    previous = set_verify_mode(mode)
    try:
        yield
    finally:
        set_verify_mode(previous)


def suppress(*rules: str):
    """Decorator: suppress the given verifier rules for one kernel.

    >>> @suppress("V101")
    ... def histogram(i, bins, x):
    ...     bins[0] += x[i]   # intentional single-bin accumulation

    The decorated function object is returned unchanged (so trace-cache
    keys are unaffected); the rule ids are recorded on
    ``fn.__verify_suppress__`` and documented suppressions show up in
    ``repro.lint`` output as skipped rules.
    """
    for rule in rules:
        if rule not in RULES:
            raise ValueError(
                f"unknown verifier rule {rule!r}; known rules: {sorted(RULES)}"
            )

    def deco(fn):
        have = set(getattr(fn, "__verify_suppress__", ()))
        fn.__verify_suppress__ = tuple(sorted(have | set(rules)))
        return fn

    return deco


# ---------------------------------------------------------------------------
# The affine index lattice
# ---------------------------------------------------------------------------


class _Lin:
    """An affine form ``const + Σ coeffs[a] · i_a`` with concrete
    numeric coefficients — one lattice element below ⊤ (= ``None``)."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: tuple, const):
        self.coeffs = coeffs
        self.const = const

    def is_const(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    def eval_at(self, point: Sequence[int]):
        return self.const + sum(c * p for c, p in zip(self.coeffs, point))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Lin({self.coeffs}, {self.const})"


def _is_intlike(v) -> bool:
    if isinstance(v, bool):
        return True
    if isinstance(v, numbers.Integral):
        return True
    return isinstance(v, float) and math.isfinite(v) and v.is_integer()


def _lin_range(lin: _Lin, box: Sequence[tuple]) -> tuple:
    """Interval of an affine form over a per-axis interval box."""
    lo = hi = lin.const
    for c, (alo, ahi) in zip(lin.coeffs, box):
        if c == 0:
            continue
        a, b = c * alo, c * ahi
        lo += min(a, b)
        hi += max(a, b)
    return lo, hi


def _int_gcd(values) -> Optional[int]:
    """gcd of the nonzero coefficients, or ``None`` if any is not an
    integer (the gcd divisibility test then gives no information)."""
    g = 0
    for v in values:
        if v == 0:
            continue
        if not _is_intlike(v):
            return None
        g = math.gcd(g, abs(int(v)))
    return g


class _Access:
    """One store or load with its affine index forms and guard box."""

    __slots__ = ("kind", "array", "forms", "box", "text")

    def __init__(self, kind, array, forms, box, text):
        self.kind = kind
        self.array = array
        self.forms = forms
        self.box = box
        self.text = text

    def pin(self) -> Optional[tuple]:
        """The single iteration tuple this access runs at, if its guard
        pins every launch axis; ``None`` otherwise."""
        point = []
        for lo, hi in self.box:
            if lo != hi or lo in (-_INF, _INF):
                return None
            point.append(lo)
        return tuple(point)


_NEGATE_CMP = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}
_MIRROR_CMP = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq", "ne": "ne"}


class _Verifier:
    """One verification run over a single optimized trace."""

    def __init__(
        self,
        trace: N.Trace,
        *,
        dims: Optional[tuple],
        shapes: Optional[dict],
        scalars: Optional[dict],
        op: Optional[str],
        kernel: str,
    ):
        self.trace = trace
        self.ndim = trace.ndim
        self.dims = dims
        self.shapes = shapes or {}
        self.scalars = scalars or {}
        self.op = op
        self.kernel = kernel
        self.used_scalars: set[int] = set()
        self.diagnostics: list[Diagnostic] = []
        self._emitted: set[tuple] = set()
        self._affine_memo: dict[int, Optional[_Lin]] = {}
        self._accesses: list[_Access] = []
        self._float_eq: list[N.Compare] = []

    # -- diagnostics -------------------------------------------------------
    def _emit(self, rule: str, message: str, provenance: str = "") -> None:
        key = (rule, message, provenance)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=RULES[rule][0],
                kernel=self.kernel,
                message=message,
                provenance=provenance,
            )
        )

    # -- affine abstraction -------------------------------------------------
    def _affine(self, node: N.Node) -> Optional[_Lin]:
        nid = id(node)
        if nid in self._affine_memo:
            return self._affine_memo[nid]
        lin = self._affine_uncached(node)
        self._affine_memo[nid] = lin
        return lin

    def _zero(self) -> tuple:
        return (0,) * self.ndim

    def _affine_uncached(self, node: N.Node) -> Optional[_Lin]:
        if isinstance(node, N.Const):
            if isinstance(node.value, (bool, int, float)):
                return _Lin(self._zero(), node.value)
            return None
        if isinstance(node, N.Index):
            coeffs = tuple(1 if a == node.axis else 0 for a in range(self.ndim))
            return _Lin(coeffs, 0)
        if isinstance(node, N.ScalarArg):
            value = self.scalars.get(node.pos)
            if isinstance(value, numbers.Real) and not isinstance(value, complex):
                self.used_scalars.add(node.pos)
                v = int(value) if _is_intlike(value) else float(value)
                return _Lin(self._zero(), v)
            return None
        if isinstance(node, N.BinOp):
            lhs = self._affine(node.lhs)
            rhs = self._affine(node.rhs)
            if lhs is None or rhs is None:
                return None
            if node.op == "add":
                return _Lin(
                    tuple(a + b for a, b in zip(lhs.coeffs, rhs.coeffs)),
                    lhs.const + rhs.const,
                )
            if node.op == "sub":
                return _Lin(
                    tuple(a - b for a, b in zip(lhs.coeffs, rhs.coeffs)),
                    lhs.const - rhs.const,
                )
            if node.op == "mul":
                if rhs.is_const():
                    k = rhs.const
                    return _Lin(tuple(c * k for c in lhs.coeffs), lhs.const * k)
                if lhs.is_const():
                    k = lhs.const
                    return _Lin(tuple(c * k for c in rhs.coeffs), rhs.const * k)
                return None
            return None
        if isinstance(node, N.UnOp) and node.op == "neg":
            inner = self._affine(node.operand)
            if inner is None:
                return None
            return _Lin(tuple(-c for c in inner.coeffs), -inner.const)
        if isinstance(node, N.Cast) and node.kind == "int":
            inner = self._affine(node.operand)
            if inner is not None and _is_intlike(inner.const) and all(
                _is_intlike(c) for c in inner.coeffs
            ):
                return inner  # int() of an integer form is the identity
            return None
        return None

    # -- guard refinement ---------------------------------------------------
    def _base_box(self) -> list:
        if self.dims is None:
            return [(-_INF, _INF)] * self.ndim
        return [(0, d - 1) for d in self.dims]

    def _refine(self, box: list, cond: Optional[N.Node], polarity: bool = True):
        """Intersect ``box`` with the iterations satisfying ``cond``.

        Returns the refined box, or ``None`` when the guard is
        infeasible within the launch domain (the access never runs).
        """
        if cond is None:
            return box
        box = list(box)
        for node, pol in self._conjuncts(cond, polarity):
            if isinstance(node, N.Compare):
                box = self._apply_compare(node, pol, box)
                if box is None:
                    return None
        return box

    def _conjuncts(self, node: N.Node, polarity: bool):
        """Yield ``(leaf, polarity)`` conjuncts of a guard expression."""
        if isinstance(node, N.Not):
            yield from self._conjuncts(node.operand, not polarity)
        elif isinstance(node, N.BoolOp) and (
            (node.op == "and" and polarity) or (node.op == "or" and not polarity)
        ):
            yield from self._conjuncts(node.lhs, polarity)
            yield from self._conjuncts(node.rhs, polarity)
        else:
            yield node, polarity

    def _apply_compare(self, cmp: N.Compare, polarity: bool, box: list):
        lhs = self._affine(cmp.lhs)
        rhs = self._affine(cmp.rhs)
        if lhs is None or rhs is None:
            return box
        form = _Lin(
            tuple(a - b for a, b in zip(lhs.coeffs, rhs.coeffs)),
            lhs.const - rhs.const,
        )
        axes = [a for a, c in enumerate(form.coeffs) if c != 0]
        if len(axes) != 1:
            return box
        axis = axes[0]
        c = form.coeffs[axis]
        op = cmp.op if polarity else _NEGATE_CMP[cmp.op]
        if c < 0:  # divide through by a negative coefficient
            op = _MIRROR_CMP[op]
        bound = -form.const / c
        lo, hi = box[axis]
        if op == "lt":
            hi = min(hi, math.ceil(bound) - 1 if _is_intlike(bound) else math.floor(bound))
        elif op == "le":
            hi = min(hi, math.floor(bound))
        elif op == "gt":
            lo = max(lo, math.floor(bound) + 1 if _is_intlike(bound) else math.ceil(bound))
        elif op == "ge":
            lo = max(lo, math.ceil(bound))
        elif op == "eq":
            if not _is_intlike(bound):
                return None
            lo = max(lo, int(bound))
            hi = min(hi, int(bound))
        elif op == "ne":
            if _is_intlike(bound):
                b = int(bound)
                if lo == b == hi:
                    return None
                if lo == b:
                    lo += 1
                elif hi == b:
                    hi -= 1
        if lo > hi:
            return None
        box[axis] = (lo, hi)
        return box

    # -- access collection ---------------------------------------------------
    def _add_access(self, kind, array, indices, box, text) -> None:
        forms = tuple(self._affine(ix) for ix in indices)
        self._accesses.append(_Access(kind, array, forms, box, text))

    def _box_sig(self, box) -> tuple:
        return tuple(box)

    def collect(self) -> None:
        base = self._base_box()
        for st in self.trace.stores:
            box = self._refine(base, st.condition)
            if box is None:
                continue  # statically unreachable under these dims
            self._add_access(
                "store",
                st.array,
                st.indices,
                box,
                f"arg{st.array.pos}[{', '.join(N.format_node(ix) for ix in st.indices)}]",
            )
            seen: set[tuple] = set()
            for ix in st.indices:
                self._walk_expr(ix, box, seen)
            self._walk_expr(st.value, box, seen)
            if st.condition is not None:
                self._walk_condition(st.condition, base, seen)
        if self.trace.result is not None:
            self._walk_expr(self.trace.result, base, set())

    def _walk_condition(self, cond: N.Node, box: list, seen: set) -> None:
        """Walk a guard left-to-right, refining the box progressively so
        a load in a later conjunct is analyzed under the earlier ones
        (matching Python's short-circuit evaluation order)."""
        if isinstance(cond, N.BoolOp) and cond.op == "and":
            self._walk_condition(cond.lhs, box, seen)
            refined = self._refine(box, cond.lhs)
            if refined is not None:
                self._walk_condition(cond.rhs, refined, seen)
            return
        if isinstance(cond, N.Not):
            self._walk_condition(cond.operand, box, seen)
            return
        self._walk_expr(cond, box, seen)

    def _walk_expr(self, node: N.Node, box: list, seen: set) -> None:
        key = (id(node), self._box_sig(box))
        if key in seen:
            return
        seen.add(key)
        if isinstance(node, N.Load):
            self._add_access(
                "load", node.array, node.indices, box, N.format_node(node)
            )
            for ix in node.indices:
                self._walk_expr(ix, box, seen)
            return
        if isinstance(node, N.Select):
            self._walk_expr(node.cond, box, seen)
            box_t = self._refine(box, node.cond, True)
            if box_t is not None:
                self._walk_expr(node.if_true, box_t, seen)
            box_f = self._refine(box, node.cond, False)
            if box_f is not None:
                self._walk_expr(node.if_false, box_f, seen)
            return
        if isinstance(node, N.Compare) and node.op in ("eq", "ne"):
            for side in (node.lhs, node.rhs):
                if isinstance(side, N.Const) and isinstance(side.value, float):
                    self._float_eq.append(node)
        for child in node.children:
            self._walk_expr(child, box, seen)

    # -- the index-distance decision procedure --------------------------------
    def _conflict(self, a: _Access, b: _Access) -> Optional[str]:
        """Can ``a`` and ``b`` touch the same element from two *distinct*
        iteration tuples?  ``None`` means provably not; otherwise a short
        reason string."""
        pa, pb = a.pin(), b.pin()
        if a is b and pa is not None:
            return None  # runs on exactly one iteration
        if pa is not None and pb is not None:
            if pa == pb:
                return None  # same single iteration: program order applies
            la = [f.eval_at(pa) if f is not None else None for f in a.forms]
            lb = [f.eval_at(pb) if f is not None else None for f in b.forms]
            if any(x is None or y is None for x, y in zip(la, lb)):
                return "single-lane accesses with unresolved indices"
            return "distinct single lanes hit the same element" if la == lb else None

        # Range disjointness: any dimension whose value sets cannot meet
        # proves the pair safe regardless of iteration coupling.
        for d in range(len(a.forms)):
            fa, fb = a.forms[d], b.forms[d]
            if fa is None or fb is None:
                continue
            alo, ahi = _lin_range(fa, a.box)
            blo, bhi = _lin_range(fb, b.box)
            if ahi < blo or bhi < alo:
                return None

        if any(f is None for f in a.forms) or any(f is None for f in b.forms):
            return "index not affine in the launch indices"

        # Per-dimension gcd feasibility over independent iteration tuples.
        for d in range(len(a.forms)):
            fa, fb = a.forms[d], b.forms[d]
            delta = fb.const - fa.const
            if not _is_intlike(delta):
                return None  # fractional offset: integer elements never meet
            g = _int_gcd(list(fa.coeffs) + list(fb.coeffs))
            if g is not None and g > 0 and int(delta) % g != 0:
                return None

        same_coeffs = all(
            fa.coeffs == fb.coeffs for fa, fb in zip(a.forms, b.forms)
        )
        if same_coeffs:
            # Difference box of Δ = I_a − I_b.
            dbox = [
                (a.box[ax][0] - b.box[ax][1], a.box[ax][1] - b.box[ax][0])
                for ax in range(self.ndim)
            ]
            deltas = []
            for d in range(len(a.forms)):
                delta = b.forms[d].const - a.forms[d].const
                lo, hi = _lin_range(_Lin(a.forms[d].coeffs, 0), dbox)
                if delta < lo or delta > hi:
                    return None  # offset larger than any in-range distance
                deltas.append(delta)
            if all(d == 0 for d in deltas):
                if self._injective(a.forms, dbox):
                    return None
                return "index map is not injective over the launch domain"
            return "indices collide at a nonzero iteration distance"

        # Mixed coefficients with one side pinned: safe when the moving
        # side is injective and only meets the pinned element at the
        # pinned iteration itself.
        if pa is not None or pb is not None:
            pinned, moving = (a, b) if pa is not None else (b, a)
            point = pinned.pin()
            loc = [f.eval_at(point) for f in pinned.forms]
            at_pin = [f.eval_at(point) for f in moving.forms]
            dbox = [
                (moving.box[ax][0] - moving.box[ax][1],
                 moving.box[ax][1] - moving.box[ax][0])
                for ax in range(self.ndim)
            ]
            if at_pin == loc and self._injective(moving.forms, dbox):
                return None
        return "index maps can coincide across iterations"

    def _injective(self, forms: Sequence[_Lin], dbox: list) -> bool:
        """Is ``C·Δ = 0, Δ ≠ 0`` infeasible over the difference box?

        Constraint propagation with a mixed-radix dominance test: an axis
        whose coefficient in some dimension outweighs the maximal
        contribution of every other still-free axis must have ``Δ = 0``.
        """
        maxabs = []
        for lo, hi in dbox:
            if lo == -_INF or hi == _INF:
                maxabs.append(_INF)
            else:
                maxabs.append(max(abs(lo), abs(hi)))
        free = {
            a
            for a in range(self.ndim)
            if maxabs[a] != 0 and not (dbox[a][0] == 0 and dbox[a][1] == 0)
        }
        changed = True
        while free and changed:
            changed = False
            for lin in forms:
                active = [a for a in free if lin.coeffs[a] != 0]
                if not active:
                    continue
                for a in active:
                    others = sum(
                        abs(lin.coeffs[b]) * maxabs[b] for b in active if b != a
                    )
                    if abs(lin.coeffs[a]) > others:
                        if not (dbox[a][0] <= 0 <= dbox[a][1]):
                            return True  # Δ_a = 0 contradicts the box
                        free.discard(a)
                        changed = True
                        break
                if changed:
                    break
        return not free

    # -- rules ---------------------------------------------------------------
    def check_races(self) -> None:
        stores = [x for x in self._accesses if x.kind == "store"]
        loads = [x for x in self._accesses if x.kind == "load"]
        for i, a in enumerate(stores):
            for b in stores[i:]:
                if b.array.pos != a.array.pos:
                    continue
                reason = self._conflict(a, b)
                if reason is not None:
                    which = (
                        f"store {a.text}"
                        if a is b
                        else f"stores {a.text} and {b.text}"
                    )
                    self._emit(
                        "V101",
                        f"{which} may write the same element from two "
                        f"different iterations ({reason})",
                        a.text if a is b else f"{a.text}; {b.text}",
                    )
            for ld in loads:
                if ld.array.pos != a.array.pos:
                    continue
                reason = self._conflict(a, ld)
                if reason is not None:
                    self._emit(
                        "V102",
                        f"store {a.text} and load {ld.text} may alias across "
                        f"iterations ({reason}); the value read depends on "
                        "execution order",
                        f"{a.text}; {ld.text}",
                    )

    def check_bounds(self) -> None:
        for acc in self._accesses:
            shape = self.shapes.get(acc.array.pos)
            if shape is None or len(shape) != len(acc.forms):
                continue
            for d, form in enumerate(acc.forms):
                if form is None:
                    continue
                lo, hi = _lin_range(form, acc.box)
                extent = shape[d]
                if lo < 0 or hi > extent - 1:
                    self._emit(
                        "V201",
                        f"{acc.kind} {acc.text}: axis {d} index spans "
                        f"[{lo:g}, {hi:g}] but the array extent is {extent} "
                        "(negative indices wrap in NumPy; overruns raise at "
                        "run time)",
                        acc.text,
                    )

    def check_reduction(self) -> None:
        if self.op is None:
            return
        if self.trace.stores:
            names = ", ".join(
                f"arg{st.array.pos}" for st in self.trace.stores
            )
            self._emit(
                "V301",
                "parallel_reduce kernels must be pure, but this one stores "
                f"into {names}; move side effects to a parallel_for",
                f"{len(self.trace.stores)} store(s)",
            )
        if self.op in ("min", "max") and self.trace.implicit_return_paths:
            self._emit(
                "V302",
                f"{self.trace.implicit_return_paths} control-flow path(s) "
                "fall off the kernel without returning; the implicit 0.0 "
                f"is not the neutral element of op={self.op!r} — return an "
                "explicit value on every path",
                f"op={self.op}",
            )

    def check_lint(self) -> None:
        # V401: dead stores — shared analysis with the graph pipeline's
        # DSE pass (repro.ir.deadstore), which fixed this rule's false
        # positives on guarded stores whose guard an intervening store
        # could flip.
        from .deadstore import trace_dead_stores

        stores = self.trace.stores
        for i, _killer in trace_dead_stores(self.trace):
            sa = stores[i]
            self._emit(
                "V401",
                f"store arg{sa.array.pos}"
                f"[{', '.join(N.format_node(ix) for ix in sa.indices)}] "
                "is overwritten by a later store to the same element "
                "before any read",
                f"store #{i}",
            )
        # V402: unused array arguments.
        used = set()
        for root in self.trace.expressions():
            for node in N.walk(root):
                if isinstance(node, N.Load):
                    used.add(node.array.pos)
        for st in self.trace.stores:
            used.add(st.array.pos)
        for pos in self.trace.array_args:
            if pos not in used:
                self._emit(
                    "V402",
                    f"array argument {pos} is never loaded or stored; drop "
                    "it or use it",
                    f"arg{pos}",
                )
        # V403: float equality guards.
        for cmp in self._float_eq:
            self._emit(
                "V403",
                "equality comparison against a float constant "
                f"({N.format_node(cmp)}) is sensitive to rounding; compare "
                "against a tolerance instead",
                N.format_node(cmp),
            )

    def run(self) -> list[Diagnostic]:
        self.collect()
        self.check_races()
        self.check_bounds()
        self.check_reduction()
        self.check_lint()
        order = {"error": 0, "warning": 1, "info": 2}
        self.diagnostics.sort(key=lambda d: (order[d.severity], d.rule))
        return self.diagnostics


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def verify_trace(
    trace: N.Trace,
    *,
    dims: Optional[tuple] = None,
    shapes: Optional[dict] = None,
    scalars: Optional[dict] = None,
    op: Optional[str] = None,
    kernel: str = "<kernel>",
) -> tuple[list[Diagnostic], set[int]]:
    """Run every rule over one trace.

    ``dims`` bounds the launch axes, ``shapes`` maps array argument
    positions to extents, ``scalars`` maps scalar argument positions to
    their concrete values (the specialization analogue — e.g. ``n`` in
    the flat LBM indexing), ``op`` is the reduce combine op or ``None``
    for a for-kernel.  Returns ``(diagnostics, used_scalar_positions)``;
    the second element supports value-insensitive caching upstream.
    """
    if dims is not None and len(dims) != trace.ndim:
        raise ValueError(
            f"dims {dims!r} does not match the trace's {trace.ndim}-D domain"
        )
    v = _Verifier(
        trace, dims=dims, shapes=shapes, scalars=scalars, op=op, kernel=kernel
    )
    return v.run(), v.used_scalars


def abstract_accesses(
    trace: N.Trace,
    *,
    dims: Optional[tuple] = None,
    shapes: Optional[dict] = None,
    scalars: Optional[dict] = None,
    kernel: str = "<kernel>",
) -> list:
    """Collect every store/load of one trace as affine accesses.

    Returns the verifier's raw access records — ``kind`` (``"store"`` |
    ``"load"``), ``array`` argument, per-axis affine ``forms`` (``None``
    = not affine), guard ``box`` — without running any diagnostic rule.
    Statically unreachable stores (infeasible guards under ``dims``) are
    dropped, exactly as the race rules see them.  This is the shared
    abstraction behind the per-plan memory-effects summaries
    (:mod:`repro.ir.effects`) and the translation validator
    (:mod:`repro.ir.validate`).
    """
    v = _Verifier(
        trace, dims=dims, shapes=shapes, scalars=scalars, op=None, kernel=kernel
    )
    v.collect()
    return v._accesses


_MISSING = object()


def _args_env(args: Sequence[Any]) -> tuple[dict, dict]:
    shapes: dict[int, tuple] = {}
    scalars: dict[int, Any] = {}
    for pos, a in enumerate(args):
        if isinstance(a, np.ndarray):
            shapes[pos] = tuple(a.shape)
        elif isinstance(a, np.generic):
            scalars[pos] = a.item()
        elif isinstance(a, numbers.Real):
            scalars[pos] = a
    return shapes, scalars


def _verify_cached(kernel, dims, args, op) -> tuple[tuple, bool]:
    """Verify a :class:`~repro.ir.compile.CompiledKernel`, memoized.

    The cache key is ``(dims, shapes, op)`` plus the values of only the
    scalar arguments the analysis actually consumed — so an ``alpha``
    that never reaches an index or guard does not force re-verification
    every iteration of a solver loop.  Returns ``(diagnostics, fresh)``.
    """
    name = getattr(kernel.fn, "__name__", repr(kernel.fn))
    if kernel.trace is None:
        diags = (
            Diagnostic(
                rule="V901",
                severity="info",
                kernel=name,
                message=(
                    "kernel runs on the interpreter tier "
                    f"({kernel.fallback_reason or 'no trace'}); static "
                    "verification is not available"
                ),
            ),
        )
        return diags, False
    shapes, scalars = _args_env(args)
    base = (tuple(dims), tuple(sorted(shapes.items())), op)
    cache = getattr(kernel, "_verify_cache", None)
    if cache is None:
        cache = []
        object.__setattr__(kernel, "_verify_cache", cache)
    for entry_base, used_values, diags in cache:
        if entry_base == base and all(
            scalars.get(pos, _MISSING) == value for pos, value in used_values
        ):
            return diags, False
    # Persistent tier: diagnostics memoized by an earlier process travel
    # with the kernel's disk entry.  A match is promoted into the live
    # memo and reported as *fresh* — the counters tick and warn-mode
    # warns once, exactly as a cold verification would — but the
    # analysis itself is skipped.
    disk = getattr(kernel, "_verify_cache_disk", None)
    if disk:
        for entry in list(disk):
            entry_base, used_values, diags = entry
            if entry_base == base and all(
                scalars.get(pos, _MISSING) == value
                for pos, value in used_values
            ):
                disk.remove(entry)
                cache.append(entry)
                counters.record(diags)
                return diags, True
    from . import compilecache

    compilecache.record_verify_run()
    found, used = verify_trace(
        kernel.trace,
        dims=tuple(dims),
        shapes=shapes,
        scalars=scalars,
        op=op,
        kernel=name,
    )
    suppressed = set(getattr(kernel.fn, "__verify_suppress__", ()))
    if suppressed:
        found = [d for d in found if d.rule not in suppressed]
    diags = tuple(found)
    used_values = tuple(
        (pos, scalars[pos]) for pos in sorted(used) if pos in scalars
    )
    cache.append((base, used_values, diags))
    counters.record(diags)
    # Write-back: republish the kernel's disk entry so warm processes
    # inherit this verification instead of re-running it.
    compilecache.note_verified(kernel)
    return diags, True


def verify_compiled(kernel, dims, args, op: Optional[str] = None) -> tuple:
    """Diagnostics for a compiled kernel at a concrete call signature
    (no enforcement — inspection surface)."""
    return _verify_cached(kernel, dims, args, op)[0]


def verify_launch(kernel, dims, args, op: Optional[str], mode: str) -> tuple:
    """Pipeline entry point: verify and enforce per ``mode``.

    ``error`` raises :class:`KernelVerificationError` when any
    error-severity diagnostic survives suppression (on every launch, not
    just the first); ``warn`` emits each fresh non-info finding once as
    a :class:`KernelVerificationWarning`.
    """
    diags, fresh = _verify_cached(kernel, dims, args, op)
    if mode == "error" and any(d.is_error for d in diags):
        raise KernelVerificationError(
            getattr(kernel.fn, "__name__", repr(kernel.fn)), diags
        )
    if mode == "warn" and fresh:
        for d in diags:
            if d.severity != "info":
                warnings.warn(str(d), KernelVerificationWarning, stacklevel=5)
    return diags


def verify_kernel(
    fn,
    dims,
    args: Sequence[Any],
    *,
    reduce: bool = False,
    op: str = "add",
) -> tuple:
    """Compile ``fn`` for the given call signature and verify it.

    The public one-call surface: compiles through the normal
    specialization ladder (shared trace cache) and returns the
    diagnostics tuple without enforcing any mode.

    >>> import numpy as np
    >>> def racy(i, x):
    ...     x[i] = x[i + 1]
    >>> [d.rule for d in verify_kernel(racy, 8, [np.zeros(9)])]
    ['V102']
    """
    from ..core.backend import normalize_dims
    from .compile import compile_kernel

    dims = normalize_dims(dims)
    ck = compile_kernel(fn, len(dims), args, reduce=reduce)
    return verify_compiled(
        ck, dims, list(args), op if (reduce or ck.is_reduction) else None
    )
