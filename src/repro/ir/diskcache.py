"""Shared on-disk cache mechanics for the persistent compile tiers.

PR 8's native artifact cache (:mod:`repro.ir.nativecache`) established
the discipline for surviving concurrent writers and corrupted files on
a shared cache directory:

* **atomic publish** — every entry is written to a temp name in the
  destination directory and :func:`os.replace`\\ d into place, so a
  reader never observes a half-written file and two processes racing on
  the same key both end with a complete entry (last writer wins; the
  entries are equivalent by construction because the key is
  content-addressed);
* **corrupted entry → unlink + rebuild** — a file that fails its
  integrity check is deleted and treated as a miss, never an error;
  the caller simply rebuilds and republishes.

This module extracts those primitives so the persistent *compile* cache
(:mod:`repro.ir.compilecache` — pickled IR entries keyed by kernel
source hash) and the native *artifact* cache (``.c``/``.so`` pairs keyed
by generated-source hash) share one implementation, plus the directory
janitor operations (``ls``/``prune``/``clear``/``verify``) behind
``python -m repro.cache``.

Framed entries carry a magic tag and a sha256 digest of the payload;
:func:`read_entry` re-hashes on every load, so truncation, bit rot, or
a format change from another repro version all surface as
:class:`CorruptEntry` — the caller's cue to unlink and rebuild.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional

__all__ = [
    "CorruptEntry",
    "atomic_write",
    "publish_path",
    "write_entry",
    "read_entry",
    "unlink_quiet",
    "entry_files",
    "dir_bytes",
    "prune_dir",
    "clear_dir",
    "verify_dir",
]

#: Entry framing: magic + payload sha256 (hex) + newline + payload.
#: Bump the magic when the frame layout itself changes — payload-level
#: versioning lives with the payload's owner.
MAGIC = b"pyacc-entry-1\n"


class CorruptEntry(Exception):
    """An on-disk entry failed its integrity check (truncated, bit-rot,
    or foreign format).  Callers unlink and rebuild — never propagate."""


# ---------------------------------------------------------------------------
# Atomic publish
# ---------------------------------------------------------------------------


def atomic_write(path: Path, data: bytes) -> int:
    """Write ``data`` to ``path`` atomically; returns bytes written.

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename — atomic on POSIX.  A
    concurrent writer racing on the same path is benign: whichever
    rename lands last wins, and both files were complete.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        unlink_quiet(Path(tmp))
        raise
    return len(data)


def publish_path(tmp: Path, final: Path) -> None:
    """Atomically move a finished temp file into its published name.

    The rename half of :func:`atomic_write`, for callers that produce
    the temp file themselves (the native cache compiles straight into a
    temp ``.so``).
    """
    os.replace(tmp, final)


def unlink_quiet(path: Path) -> None:
    """Best-effort delete; missing files and permission races are fine."""
    try:
        os.unlink(path)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Framed entries (integrity-checked payloads)
# ---------------------------------------------------------------------------


def _frame(payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return MAGIC + digest + b"\n" + payload


def _unframe(data: bytes) -> bytes:
    if not data.startswith(MAGIC):
        raise CorruptEntry("bad magic")
    rest = data[len(MAGIC) :]
    nl = rest.find(b"\n")
    if nl != 64:  # sha256 hex digest length
        raise CorruptEntry("bad digest line")
    digest, payload = rest[:nl], rest[nl + 1 :]
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        raise CorruptEntry("digest mismatch")
    return payload


def write_entry(path: Path, payload: bytes) -> int:
    """Frame ``payload`` with an integrity digest and publish atomically.

    Returns the number of bytes written (frame included) — the caller's
    ``bytes`` counter feed.
    """
    return atomic_write(Path(path), _frame(payload))


def read_entry(path: Path) -> Optional[bytes]:
    """Load and integrity-check a framed entry.

    Returns the payload, ``None`` when the file does not exist, or
    raises :class:`CorruptEntry` when the frame fails verification (the
    caller unlinks and rebuilds).
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise CorruptEntry(str(exc)) from exc
    return _unframe(data)


# ---------------------------------------------------------------------------
# Directory janitor (python -m repro.cache)
# ---------------------------------------------------------------------------


def entry_files(
    dirpath: Path, suffixes: tuple = (".pkl",)
) -> list[tuple[Path, int, float]]:
    """``(path, size, mtime)`` for every entry file under ``dirpath``
    (non-recursive), oldest first — the LRU order ``prune_dir`` uses."""
    out: list[tuple[Path, int, float]] = []
    try:
        names = os.listdir(dirpath)
    except OSError:
        return out
    for name in names:
        if not name.endswith(tuple(suffixes)):
            continue
        p = Path(dirpath) / name
        try:
            st = p.stat()
        except OSError:
            continue
        out.append((p, st.st_size, st.st_mtime))
    out.sort(key=lambda t: t[2])
    return out


def dir_bytes(dirpath: Path, suffixes: tuple = (".pkl",)) -> int:
    """Total bytes held by entry files under ``dirpath``."""
    return sum(size for _, size, _ in entry_files(dirpath, suffixes))


def prune_dir(
    dirpath: Path, max_bytes: int, suffixes: tuple = (".pkl",)
) -> tuple[int, int]:
    """Evict least-recently-used entries until ≤ ``max_bytes`` remain.

    LRU by mtime (loads do not touch mtime, so this approximates
    least-recently-*written*; good enough for a compile cache where hot
    entries are re-stored on verify write-back).  Returns
    ``(entries_removed, bytes_freed)``.
    """
    files = entry_files(dirpath, suffixes)
    total = sum(size for _, size, _ in files)
    removed = 0
    freed = 0
    for path, size, _ in files:
        if total <= max_bytes:
            break
        unlink_quiet(path)
        total -= size
        removed += 1
        freed += size
    return removed, freed


def clear_dir(dirpath: Path, suffixes: tuple = (".pkl",)) -> int:
    """Delete every entry file under ``dirpath``; returns the count."""
    files = entry_files(dirpath, suffixes)
    for path, _, _ in files:
        unlink_quiet(path)
    return len(files)


def verify_dir(dirpath: Path, suffixes: tuple = (".pkl",)) -> tuple[int, int]:
    """Re-hash every framed entry; unlink the ones that fail.

    Returns ``(entries_checked, entries_removed)``.  Only framed entries
    are checked — the native cache's ``.c``/``.so`` artifacts verify at
    load time (the dlopen itself is the integrity check).
    """
    checked = 0
    removed = 0
    for path, _, _ in entry_files(dirpath, suffixes):
        checked += 1
        try:
            read_entry(path)
        except CorruptEntry:
            unlink_quiet(path)
            removed += 1
    return checked, removed
