"""Reference scalar executor for kernels.

Runs the *original Python kernel function* in a plain loop over the index
domain — no tracing, no vectorization.  It defines the semantics every
other executor must match and serves two roles:

1. **Fallback**: kernels the tracer cannot express (data-dependent loop
   bounds even after value specialization, too many control-flow paths,
   unsupported Python constructs) still run correctly, just slowly — the
   same way Julia falls back to unspecialized dynamic dispatch.
2. **Differential oracle**: property-based tests execute random kernels
   through both the interpreter and the vectorizer and require bit-for-bit
   comparable results (see ``tests/test_differential.py``).

The interpreter is also what the ``serial`` backend uses, giving a
dependency-light reference backend.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Sequence

import numpy as np

from ..core.exceptions import KernelExecutionError
from .vectorizer import IndexDomain

__all__ = ["interpret_for", "interpret_reduce"]


def _index_iter(domain: IndexDomain):
    """Iterate index tuples of ``domain`` in row-major order."""
    return itertools.product(*(range(lo, hi) for lo, hi in domain.ranges))


def interpret_for(
    fn: Callable, domain: IndexDomain, args: Sequence[Any]
) -> None:
    """Apply ``fn(*idx, *args)`` at every index of ``domain``."""
    for idx in _index_iter(domain):
        fn(*idx, *args)


def interpret_reduce(
    fn: Callable,
    domain: IndexDomain,
    args: Sequence[Any],
    op: str = "add",
) -> float:
    """Reduce ``fn(*idx, *args)`` over ``domain`` with ``op``.

    Matches :func:`repro.ir.vectorizer.reduce_trace`: the per-index values
    are folded as float64 with the requested operation.
    """
    if op == "add":
        acc = 0.0
        for idx in _index_iter(domain):
            v = fn(*idx, *args)
            if v is None:
                raise KernelExecutionError(
                    "parallel_reduce kernel returned None at index "
                    f"{idx}; reduction kernels must return a value"
                )
            acc += float(v)
        return acc
    if op in ("min", "max"):
        fold = min if op == "min" else max
        acc = None
        for idx in _index_iter(domain):
            v = fn(*idx, *args)
            if v is None:
                raise KernelExecutionError(
                    "parallel_reduce kernel returned None at index "
                    f"{idx}; reduction kernels must return a value"
                )
            v = float(v)
            acc = v if acc is None else fold(acc, v)
        if acc is None:
            acc = float(np.inf if op == "min" else -np.inf)
        return acc
    raise KernelExecutionError(f"unsupported reduction op {op!r}")
