"""Symbolic shape/dtype inference over traced kernels (NEP-50 lattice).

The codegen executor (:mod:`repro.ir.codegen`) elides allocations by
writing ufunc results into recycled arena buffers (``out=``) and by
fusing the final operation of an identity store straight into the
destination array.  Both rewrites are only sound when the *runtime*
result dtype and shape are known at lowering time: ``out=`` with the
wrong dtype silently casts, changing bits relative to the vectorizer.

Historically that certificate was float64-only (``_F8_PARTNERS``): a
float32 AXPY lowered fine but silently lost every ``out=`` fusion.
This module replaces it with a two-part lattice shared by codegen, the
memory-effects summaries (:mod:`repro.ir.effects`) and the translation
validator (:mod:`repro.ir.validate`):

**dtype** — an element is a concrete :class:`numpy.dtype` (*strong*),
one of the weak-scalar tokens ``"wi"``/``"wf"``/``"wb"`` (a Python
int/float/bool leaf, promoted by NEP 50's weak rules), or ``None`` (⊤ —
unknown, never certified).  Promotion is decided by **probing the very
ufunc the executors call** on zero-length operands: the result dtype of
``np.add(float32[0], 2.5)`` *is* the runtime promotion, by construction,
for whatever NumPy is installed — no hand-written promotion table to
drift.  Probes are memoized process-wide, so each ``(op, dtypes)`` pair
costs one empty-array ufunc call ever.

**shape** — per-axis booleans (``True`` = the launch-domain extent on
that axis, ``False`` = broadcast size 1), ``"scalar"`` for scalar
values, or ``None`` (unknown).

The ``out=`` certificate is :meth:`Lattice.full_domain_dtype`: a
concrete dtype is returned only when the node provably evaluates to an
array of exactly the launch-domain shape with that dtype.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from . import nodes as N
from .vectorizer import _BIN_FUNCS, _UN_FUNCS

__all__ = [
    "Lattice",
    "WEAK_INT",
    "WEAK_FLOAT",
    "WEAK_BOOL",
    "scalar_dtype",
    "promote",
]

#: Weak-scalar lattice tokens: a Python ``int``/``float``/``bool`` leaf.
#: NEP 50 keeps these *weak* — they adopt the dtype of any strong
#: partner — until an actual ufunc touches them (the result of which is
#: a strong NumPy scalar/array, which is exactly what probing returns).
WEAK_INT = "wi"
WEAK_FLOAT = "wf"
WEAK_BOOL = "wb"

_WEAK_REPRESENTATIVE = {WEAK_INT: 3, WEAK_FLOAT: 1.5, WEAK_BOOL: True}

#: The dtype of ``IndexDomain`` grids (``np.arange(..., dtype=np.intp)``).
INDEX_DTYPE = np.dtype(np.intp)

_PROBE_CACHE: dict = {}
_PROBE_MISS = object()


def scalar_dtype(value: Any):
    """Lattice element for a scalar leaf (Const / ScalarArg value).

    NumPy scalars are *strong* (their concrete dtype); Python
    bool/int/float are the weak tokens; anything else is unknown.
    """
    if isinstance(value, np.generic):
        return np.dtype(type(value))
    if isinstance(value, bool):
        return WEAK_BOOL
    if isinstance(value, int):
        return WEAK_INT
    if isinstance(value, float):
        return WEAK_FLOAT
    return None


def _operand(token):
    """A zero-cost representative operand for a lattice element."""
    if isinstance(token, np.dtype):
        return np.empty(0, dtype=token)
    return _WEAK_REPRESENTATIVE[token]


def _probe(fn, operands: tuple) -> Optional[np.dtype]:
    """Result dtype of ``fn(*operands)`` per the installed NumPy.

    ``operands`` are lattice elements (np.dtype or weak token).  Strong
    elements probe as zero-length arrays, weak ones as representative
    Python scalars — under NEP 50 the result dtype depends only on those
    kinds, never on values, so one probe decides the whole class.
    """
    key = (id(fn),) + tuple(
        o.str if isinstance(o, np.dtype) else o for o in operands
    )
    got = _PROBE_CACHE.get(key, _PROBE_MISS)
    if got is not _PROBE_MISS:
        return got
    try:
        with np.errstate(all="ignore"):
            out = fn(*(_operand(o) for o in operands))
        result = np.asarray(out).dtype
    except Exception:
        result = None
    _PROBE_CACHE[key] = result
    return result


def promote(op: str, *elements) -> Optional[np.dtype]:
    """Result dtype of binary/unary op ``op`` over lattice elements,
    or ``None`` when any input is unknown.  Exposed for tests and the
    reduce-operator checker."""
    if any(e is None for e in elements):
        return None
    fn = _BIN_FUNCS.get(op) or _UN_FUNCS.get(op)
    if fn is None:
        return None
    return _probe(fn, tuple(elements))


def _static_identity(indices: tuple, ndim: int) -> bool:
    """``a[i]`` / ``a[i, j]`` / ``a[i, j, k]`` on the launch axes."""
    if len(indices) != ndim:
        return False
    return all(
        isinstance(ix, N.Index) and ix.axis == ax
        for ax, ix in enumerate(indices)
    )


class Lattice:
    """Memoized dtype/shape analysis over one trace's shared DAG.

    ``args`` are the trace-time arguments (their dtypes are part of the
    kernel-cache key upstream, so memoizing per-lowering is sound).
    """

    def __init__(self, ndim: int, args: Sequence[Any]):
        self.ndim = ndim
        self.args = args
        self._dtype: dict[int, Any] = {}
        self._shape: dict[int, Any] = {}

    # -- dtype ------------------------------------------------------------
    def dtype(self, node: N.Node):
        """Lattice element for ``node``: np.dtype | weak token | None."""
        nid = id(node)
        if nid not in self._dtype:
            self._dtype[nid] = self._dtype_inner(node)
        return self._dtype[nid]

    def _dtype_inner(self, node: N.Node):
        if isinstance(node, N.Const):
            return scalar_dtype(node.value)
        if isinstance(node, N.Index):
            return INDEX_DTYPE
        if isinstance(node, N.ScalarArg):
            return scalar_dtype(self.args[node.pos])
        if isinstance(node, N.Load):
            arr = self.args[node.array.pos]
            if isinstance(arr, np.ndarray):
                return arr.dtype
            return None
        if isinstance(node, N.BinOp):
            a, b = self.dtype(node.lhs), self.dtype(node.rhs)
            if a is None or b is None:
                return None
            if (
                node.op == "pow"
                and not isinstance(a, np.dtype)
                and not isinstance(b, np.dtype)
            ):
                # Weak ** weak is value-dependent in Python (negative
                # exponents float); stay at ⊤.
                return None
            return _probe(_BIN_FUNCS[node.op], (a, b))
        if isinstance(node, N.UnOp):
            t = self.dtype(node.operand)
            if t is None:
                return None
            return _probe(_UN_FUNCS[node.op], (t,))
        if isinstance(node, (N.Compare, N.BoolOp, N.Not)):
            return np.dtype(np.bool_)
        if isinstance(node, N.Select):
            a = self.dtype(node.if_true)
            b = self.dtype(node.if_false)
            if a is None or b is None:
                return None
            return _probe(np.where, (np.dtype(np.bool_), a, b))
        if isinstance(node, N.Cast):
            # Mirrors codegen: asarray(...).astype(int64 | float64).
            return np.dtype(np.int64 if node.kind == "int" else np.float64)
        return None

    def concrete_dtype(self, node: N.Node) -> Optional[np.dtype]:
        """The node's dtype when *strong* (a concrete np.dtype)."""
        t = self.dtype(node)
        return t if isinstance(t, np.dtype) else None

    # -- shape ------------------------------------------------------------
    def shape(self, node: N.Node):
        nid = id(node)
        if nid not in self._shape:
            self._shape[nid] = self._shape_inner(node)
        return self._shape[nid]

    def _broadcast(self, *shapes: Any) -> Any:
        out = "scalar"
        for s in shapes:
            if s is None:
                return None
            if s == "scalar":
                continue
            if out == "scalar":
                out = s
            else:
                out = tuple(x or y for x, y in zip(out, s))
        return out

    def _shape_inner(self, node: N.Node) -> Any:
        if isinstance(node, (N.Const, N.ScalarArg)):
            return "scalar"
        if isinstance(node, N.Index):
            return tuple(ax == node.axis for ax in range(self.ndim))
        if isinstance(node, N.Load):
            if _static_identity(node.indices, self.ndim):
                return tuple(True for _ in range(self.ndim))
            # Gather: result = broadcast of the (non-scalar) index shapes.
            return self._broadcast(*(self.shape(ix) for ix in node.indices))
        if isinstance(node, (N.BinOp, N.Compare, N.BoolOp)):
            return self._broadcast(self.shape(node.lhs), self.shape(node.rhs))
        if isinstance(node, (N.UnOp, N.Not, N.Cast)):
            return self.shape(node.operand)
        if isinstance(node, N.Select):
            return self._broadcast(
                self.shape(node.cond),
                self.shape(node.if_true),
                self.shape(node.if_false),
            )
        return None

    # -- certificates ------------------------------------------------------
    def full_domain_dtype(self, node: N.Node) -> Optional[np.dtype]:
        """The ``out=`` certificate: a concrete dtype when ``node``
        provably evaluates to an array of exactly the launch-domain
        shape with that dtype; ``None`` otherwise (allocate like the
        vectorizer — always correct)."""
        shape = self.shape(node)
        if not (isinstance(shape, tuple) and all(shape)):
            return None
        return self.concrete_dtype(node)

    def is_full_f8(self, node: N.Node) -> bool:
        """Legacy predicate kept for introspection: float64 over the
        full domain."""
        return self.full_domain_dtype(node) == np.float64
