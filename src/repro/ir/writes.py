"""Global write-version tracking for launch-graph hoisting.

:class:`~repro.ir.codegen.HoistedProgram` folds loads from
replay-invariant ("const") arrays into a prologue that runs once per
instantiation.  An array is only provably const if *nothing* writes it
between replays — and writers include sibling graphs and uncaptured
launches, which the instantiating graph cannot see.  This module is the
soundness backstop: every executed plan notes the arrays it stores to
(:func:`note_writes`, called from the execute stage), each instantiated
graph snapshots the versions of the arrays it assumed const
(:func:`versions_of`), and every replay re-validates the snapshot —
demoting (re-lowering without) any array some other launch has written
since.

Writes that bypass the dispatch pipeline entirely (host-side numpy
mutation of device storage after ``repro.array``) are outside the
contract — the same discipline CUDA graphs demand, where captured
operands may only be updated through graph-legal APIs.

Versions are process-global monotonic integers keyed by storage ``id``.
Snapshots embed an *epoch*; :func:`reset` (wired into
``repro.clear_cache``) bumps it, which invalidates every outstanding
snapshot conservatively (graphs rebind their prologues instead of
trusting stale values).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["note_writes", "versions_of", "reset"]

_versions: dict[int, int] = {}
_epoch = 0
_clock = 0

# Backstop against unbounded growth in long-running processes that churn
# through many distinct arrays; hitting it just forces prologue rebinds.
_MAX_ENTRIES = 1_000_000


def note_writes(ids: Iterable[int]) -> None:
    """Record that the arrays with these storage ids were written."""
    global _clock
    _clock += 1
    version = _clock
    for i in ids:
        _versions[i] = version
    if len(_versions) > _MAX_ENTRIES:  # pragma: no cover - backstop
        reset()


def versions_of(ids: Iterable[int]) -> tuple:
    """Snapshot ``(epoch, per-id versions)`` for later comparison."""
    return (_epoch, tuple(_versions.get(i, 0) for i in ids))


def reset() -> None:
    """Forget all versions and invalidate outstanding snapshots."""
    global _epoch
    _versions.clear()
    _epoch += 1
