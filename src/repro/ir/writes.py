"""Global write-version tracking for launch-graph hoisting.

:class:`~repro.ir.codegen.HoistedProgram` folds loads from
replay-invariant ("const") arrays into a prologue that runs once per
instantiation.  An array is only provably const if *nothing* writes it
between replays — and writers include sibling graphs and uncaptured
launches, which the instantiating graph cannot see.  This module is the
soundness backstop: every executed plan notes the arrays it stores to
(:func:`note_writes`, called from the execute stage), each instantiated
graph snapshots the versions of the arrays it assumed const
(:func:`versions_of`), and every replay re-validates the snapshot —
demoting (re-lowering without) any array some other launch has written
since.

Writes that bypass the dispatch pipeline entirely (host-side numpy
mutation of device storage after ``repro.array``) are outside the
contract — the same discipline CUDA graphs demand, where captured
operands may only be updated through graph-legal APIs.

The version table is **process-local** by construction.  A cluster
worker process (:mod:`repro.backends.cluster`) inherits a fork-time
copy and runs its shard against shared-memory views, so any
``note_writes`` it performs lands in the *worker's* table and is
discarded with the worker.  That is sound only because shard results
are committed through the parent: the cluster backend's execute stage
returns before the dispatch layer calls ``note_writes`` in the parent
process, so every array a sharded launch stores to is versioned here —
in the same table the parent's graph snapshots read — exactly as if the
launch had run in-process.  Backends that commit results any other way
must call :func:`note_writes` themselves or const-array hoisting would
replay stale values.

Versions are process-global monotonic integers keyed by storage ``id``.
Snapshots embed an *epoch*; :func:`reset` (wired into
``repro.clear_cache``) bumps it, which invalidates every outstanding
snapshot conservatively (graphs rebind their prologues instead of
trusting stale values).

Access guards
-------------

The program-level optimization passes (:mod:`repro.ir.program`) make
assumptions that hold only while *no launch outside the owning graph*
touches certain arrays — a sunk intermediate lives in an arena buffer,
a dead store stays eliminated only while no external reader can see the
intermediate value.  :func:`guard_ids` registers a callback on a set of
storage ids; :func:`note_access` (called from the execute stage *before*
a plan runs, and from ``to_host``) fires every guard whose owner is not
the currently executing graph (see :func:`suppress_guards`).  Guards are
one-shot: firing removes the registration, and the callback demotes the
optimistic optimization back to today's behavior.
"""

from __future__ import annotations

import contextlib
import contextvars
import weakref
from typing import Callable, Iterable

__all__ = [
    "note_writes",
    "note_access",
    "versions_of",
    "guard_ids",
    "unguard",
    "suppress_guards",
    "hazards",
    "reset",
]

_versions: dict[int, int] = {}
_epoch = 0
_clock = 0

# storage id -> list of (weakref-to-owner, callback).  A dead owner
# (collected graph) just drops its guards at the next touch.
_guards: dict[int, list] = {}
_suppressed: contextvars.ContextVar = contextvars.ContextVar(
    "repro_writes_suppressed_owner", default=None
)

# Backstop against unbounded growth in long-running processes that churn
# through many distinct arrays; hitting it just forces prologue rebinds.
_MAX_ENTRIES = 1_000_000


def note_writes(ids: Iterable[int]) -> None:
    """Record that the arrays with these storage ids were written."""
    global _clock
    _clock += 1
    version = _clock
    for i in ids:
        _versions[i] = version
    if len(_versions) > _MAX_ENTRIES:  # pragma: no cover - backstop
        reset()


def note_access(ids: Iterable[int]) -> None:
    """Fire guards for any externally-touched storage ids.

    Called *before* the touching operation runs (execute stage, or a
    ``to_host`` readback) so guard callbacks can materialize optimistic
    state while the pre-touch contents are still recoverable.  Accesses
    made by the guard's own owner (the replaying graph, marked via
    :func:`suppress_guards`) do not fire it.
    """
    if not _guards:
        return
    current = _suppressed.get()
    for i in ids:
        entries = _guards.get(i)
        if not entries:
            continue
        fired = []
        kept = []
        for ref, callback in entries:
            owner = ref()
            if owner is None:
                continue  # owner collected; drop the stale guard
            if owner is current:
                kept.append((ref, callback))
            else:
                fired.append(callback)
        if kept:
            _guards[i] = kept
        else:
            _guards.pop(i, None)
        for callback in fired:
            callback()


def guard_ids(ids: Iterable[int], owner: object, callback: Callable[[], None]) -> None:
    """Register a one-shot external-access guard on storage ids.

    ``callback`` runs (once) when any launch or host readback whose
    suppression owner is not ``owner`` touches one of ``ids``.  The owner
    is held weakly; collecting it retires its guards.
    """
    ref = weakref.ref(owner)
    for i in ids:
        _guards.setdefault(i, []).append((ref, callback))


def unguard(owner: object) -> None:
    """Drop every guard registered by ``owner``."""
    dead = []
    for i, entries in _guards.items():
        kept = [(ref, cb) for ref, cb in entries if ref() is not None and ref() is not owner]
        if kept:
            _guards[i] = kept
        else:
            dead.append(i)
    for i in dead:
        _guards.pop(i, None)


@contextlib.contextmanager
def suppress_guards(owner: object):
    """Mark accesses in this scope as made *by* ``owner``.

    A replaying graph wraps its node loop in this so its own launches do
    not trip the guards protecting its own optimizations.
    """
    token = _suppressed.set(owner)
    try:
        yield
    finally:
        _suppressed.reset(token)


def hazards(
    prev_writes: Iterable[int],
    prev_reads: Iterable[int],
    new_writes: Iterable[int],
    new_reads: Iterable[int],
) -> tuple:
    """Classify the data hazards between an earlier and a later access
    set, by storage id.

    Returns a tuple drawn from ``("RAW", "WAW", "WAR")`` — read-after-
    write, write-after-write, write-after-read, in that order.  Shared
    by the program IR's def-use edges and the cross-launch race
    diagnostic (V601 in :mod:`repro.ir.effects`).
    """
    pw, pr = set(prev_writes), set(prev_reads)
    nw, nr = set(new_writes), set(new_reads)
    found = []
    if pw & nr:
        found.append("RAW")
    if pw & nw:
        found.append("WAW")
    if pr & nw:
        found.append("WAR")
    return tuple(found)


def versions_of(ids: Iterable[int]) -> tuple:
    """Snapshot ``(epoch, per-id versions)`` for later comparison."""
    return (_epoch, tuple(_versions.get(i, 0) for i in ids))


def reset() -> None:
    """Forget all versions and invalidate outstanding snapshots."""
    global _epoch
    _versions.clear()
    _guards.clear()
    _epoch += 1
