"""Scratch-buffer arena: recycled temporaries for generated kernels.

The codegen executor (:mod:`repro.ir.codegen`) writes every full-domain
temporary with ``out=`` into a preallocated buffer instead of letting each
ufunc allocate a fresh result array.  Iterative solvers issue hundreds of
identical launches (HPCCG/CG run the same AXPY/DOT/matvec shapes every
iteration), so without reuse the allocator is churned with the same
``(shape, dtype)`` requests over and over — pure overhead the paper's
LLVM-compiled kernels never pay.

Design
------
* A :class:`ScratchArena` keeps per-``(shape, dtype)`` free-lists of
  buffers.  Arenas are **per execution context** (see
  :class:`repro.core.context.ExecutionContext`), so concurrent tenants
  never exchange buffers; a process-wide default arena backs direct
  ``CompiledKernel.run_for`` calls made outside any context.
* A launch acquires buffers through an :class:`ArenaFrame` and releases
  them all when the launch finishes.  The threads backend opens **one
  frame per worker chunk**: frames draw from the shared pool under the
  arena lock, but a buffer belongs to exactly one frame while in flight,
  so chunked execution shares nothing (the verifier's V101/V102 analysis
  already guarantees chunk independence at the kernel level; the arena
  preserves it at the allocator level).
* Statistics (buffers created/reused, bytes saved) are kept per arena and
  aggregated process-wide for the bench harness's ``--json`` output.
* Arenas, frames, and the aggregate counters are **process-local**.  A
  cluster worker (:mod:`repro.backends.cluster`) builds its *own*
  ``ScratchArena`` after fork and never returns buffers across the
  process boundary: shard results travel only through the shared-memory
  argument segments (or the pickled partials of a reduce), which the
  parent commits explicitly.  Nothing an arena hands out may be assumed
  visible to, or reclaimable by, another process — worker counters die
  with the worker, and the parent's ``global_stats`` only reflect
  parent-side execution.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

__all__ = ["ScratchArena", "ArenaFrame", "default_arena", "global_stats"]

_F8_STR = np.dtype(np.float64).str


class _GlobalCounters:
    """Process-wide aggregate across every arena (bench reporting)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.buffers_created = 0
        self.buffers_reused = 0
        self.bytes_allocated = 0
        self.bytes_saved = 0

    def record(self, *, created: int, reused: int, bytes_allocated: int, bytes_saved: int) -> None:
        with self._lock:
            self.buffers_created += created
            self.buffers_reused += reused
            self.bytes_allocated += bytes_allocated
            self.bytes_saved += bytes_saved

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "buffers_created": self.buffers_created,
                "buffers_reused": self.buffers_reused,
                "bytes_allocated": self.bytes_allocated,
                "bytes_saved": self.bytes_saved,
            }


_GLOBAL = _GlobalCounters()


def global_stats() -> dict:
    """Process-wide arena activity (all arenas, since process start)."""
    return _GLOBAL.snapshot()


class ArenaFrame:
    """The buffers one launch (or one worker chunk) has checked out.

    ``take(shape, dtype)`` returns a C-contiguous scratch array drawn from
    the arena's pool (or freshly allocated on a pool miss); ``release()``
    returns every taken buffer to the pool.  Frames are not thread-safe —
    each worker owns its own frame, which is the whole point.
    """

    __slots__ = ("_arena", "_taken")

    def __init__(self, arena: "ScratchArena"):
        self._arena = arena
        self._taken: list[tuple[tuple, np.ndarray]] = []

    def take(self, shape: tuple, dtype=np.float64) -> np.ndarray:
        # Generated kernels take float64 scratch on every launch; skip
        # the np.dtype round-trip on that hot path.
        if dtype is np.float64:
            key = (shape, _F8_STR)
        else:
            key = (shape, np.dtype(dtype).str)
        buf = self._arena._pop(key, shape, dtype)
        self._taken.append((key, buf))
        return buf

    def release(self) -> None:
        if self._taken:
            self._arena._push_all(self._taken)
            self._taken = []

    # Context-manager sugar for direct users/tests.
    def __enter__(self) -> "ArenaFrame":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class ScratchArena:
    """Pooled scratch buffers keyed by ``(shape, dtype)``.

    Thread-safe: pops and pushes hold one lock; the arrays themselves are
    only ever visible to one frame at a time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pools: dict[tuple, list[np.ndarray]] = {}
        self._created = 0
        self._reused = 0
        self._bytes_allocated = 0
        self._bytes_saved = 0
        #: Fault-injection hook (see :mod:`repro.faults`): the owning
        #: execution context sets this when a plan is installed, so
        #: frame opens can inject allocation failures even from worker
        #: threads (where contextvars do not resolve the context).  The
        #: attribute check is the entire fast-path cost when off.
        self._fault_plan = None

    def frame(self) -> ArenaFrame:
        """Open a frame for one launch / worker chunk.

        Fault seam ``arena.frame``: fires before any buffer is drawn, so
        an injected allocation failure leaves the pool untouched and the
        launch can be retried cleanly.
        """
        if self._fault_plan is not None:
            self._fault_plan.check("arena.frame")
        return ArenaFrame(self)

    def reserve(self, shapes_dtypes) -> int:
        """Pre-size the pools for a known launch sequence.

        ``shapes_dtypes`` is an iterable of ``(shape, dtype)`` pairs, one
        per scratch buffer the sequence may hold *concurrently* —
        duplicates mean that many buffers of that key.  Pools are topped
        up so at least that many free buffers exist per key; buffers
        already pooled are counted toward the requirement.  Returns the
        number of buffers allocated.

        Instantiated launch graphs (:mod:`repro.graph`) call this so
        ``replay()`` draws every ``out=`` temporary from a warm pool —
        zero arena growth on the hot path (asserted in tests).
        """
        need: dict[tuple, int] = {}
        for shape, dtype in shapes_dtypes:
            key = (tuple(shape), np.dtype(dtype).str)
            need[key] = need.get(key, 0) + 1
        created = 0
        for key, count in need.items():
            shape, dtype_str = key
            with self._lock:
                missing = count - len(self._pools.get(key, ()))
            for _ in range(missing):
                buf = np.empty(shape, dtype=np.dtype(dtype_str))
                with self._lock:
                    self._pools.setdefault(key, []).append(buf)
                    self._created += 1
                    self._bytes_allocated += buf.nbytes
                _GLOBAL.record(
                    created=1,
                    reused=0,
                    bytes_allocated=buf.nbytes,
                    bytes_saved=0,
                )
                created += 1
        return created

    def lease(self, shape: tuple, dtype=np.float64) -> np.ndarray:
        """Check a buffer out of the arena *permanently* (no frame).

        The allocation-sinking pass (:mod:`repro.ir.program`) demotes a
        graph-local intermediate into a leased buffer: the buffer lives
        as long as the holder keeps a reference and never returns to the
        pool — returning it would let an unrelated launch scribble over
        state a replaying graph still depends on.  Draws from the pool
        when a buffer of the right key is free, else allocates.
        """
        key = (tuple(shape), np.dtype(dtype).str)
        return self._pop(key, tuple(shape), dtype)

    # -- pool mechanics (called by frames) ---------------------------------
    def _pop(self, key: tuple, shape: tuple, dtype) -> np.ndarray:
        with self._lock:
            pool = self._pools.get(key)
            if pool:
                buf = pool.pop()
                self._reused += 1
                self._bytes_saved += buf.nbytes
                _GLOBAL.record(created=0, reused=1, bytes_allocated=0, bytes_saved=buf.nbytes)
                return buf
        buf = np.empty(shape, dtype=dtype)
        with self._lock:
            self._created += 1
            self._bytes_allocated += buf.nbytes
        _GLOBAL.record(created=1, reused=0, bytes_allocated=buf.nbytes, bytes_saved=0)
        return buf

    def _push_all(self, taken: list[tuple[tuple, np.ndarray]]) -> None:
        with self._lock:
            for key, buf in taken:
                self._pools.setdefault(key, []).append(buf)

    # -- introspection ------------------------------------------------------
    def stats(self) -> dict:
        """Locked snapshot: live buffer count + reuse counters."""
        with self._lock:
            live = sum(len(v) for v in self._pools.values())
            return {
                "buffers_live": live,
                "buffers_created": self._created,
                "buffers_reused": self._reused,
                "bytes_allocated": self._bytes_allocated,
                "bytes_saved": self._bytes_saved,
            }

    def clear(self) -> None:
        """Drop pooled buffers (tests / memory pressure)."""
        with self._lock:
            self._pools.clear()


#: Fallback arena for kernel executions issued outside any execution
#: context (direct ``CompiledKernel.run_for`` calls, the ka layer).
_DEFAULT = ScratchArena()


def default_arena() -> ScratchArena:
    return _DEFAULT


def resolve(arena: Optional[ScratchArena]) -> ScratchArena:
    """The arena to use for a launch: the given one, else the default."""
    return arena if arena is not None else _DEFAULT
