"""Symbolic tracing of scalar kernels into the expression IR.

This module is the front half of the package's tracing JIT — the stand-in
for Julia's LLVM-based kernel specialization.  A kernel like the paper's

.. code-block:: python

    def axpy(i, alpha, x, y):
        x[i] += alpha * y[i]

is executed once (or a few times, see below) with *symbolic* arguments:
``i`` is a :class:`SymScalar` wrapping an :class:`~repro.ir.nodes.Index`
node, ``alpha`` a symbolic scalar, and ``x``/``y`` :class:`SymArray`
proxies.  Arithmetic on the proxies builds IR nodes; subscript assignment
records :class:`~repro.ir.nodes.Store` effects; ``return`` values become
the reduction expression.

Control flow
------------
Python evaluates ``if``/``and``/``or`` eagerly, so a branch on a symbolic
condition calls ``SymBool.__bool__``.  The tracer handles this with
**branch forking**: the first execution answers every such query with
``True`` and records, for each query, an alternative decision prefix; the
kernel is then re-executed once per unexplored prefix.  Each execution
contributes only the effects that occur *after* it diverges from
previously explored prefixes, each guarded by the conjunction of the
branch decisions live at that point.  This is exactly how the paper's
boundary-conditioned kernels (``matvecmul``'s ``if i == 0 / elif i ==
n-1 / else`` and the LBM interior guard) become masked vector code.

Kernels must be *pure* Python w.r.t. tracing: deterministic, no I/O, no
mutation of Python state other than subscript stores into array
arguments.  Loops over **concrete** ranges are unrolled; a loop bound that
depends on a symbolic scalar raises
:class:`~repro.core.exceptions.ConcretizationRequired`, which the compile
driver (:mod:`repro.ir.compile`) answers by re-tracing with scalar
arguments baked in as constants (value specialization).
"""

from __future__ import annotations

import numbers
import threading
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..core.exceptions import (
    ConcretizationRequired,
    TooManyPathsError,
    TraceError,
)
from . import nodes as N

__all__ = [
    "SymScalar",
    "SymBool",
    "SymArray",
    "trace_kernel",
    "as_node",
    "MAX_PATHS",
]

#: Default budget for branch-forking path enumeration.
MAX_PATHS = 128

_TLS = threading.local()


def _recorder() -> "_PathRecorder":
    rec = getattr(_TLS, "recorder", None)
    if rec is None:
        raise TraceError(
            "symbolic value used outside of an active kernel trace; "
            "symbolic scalars/arrays must not escape the kernel function"
        )
    return rec


def as_node(value: Any) -> N.Node:
    """Coerce a Python number or symbolic proxy to an IR node."""
    if isinstance(value, SymScalar):
        return value._node
    if isinstance(value, (bool, np.bool_)):
        return N.Const(bool(value))
    if isinstance(value, numbers.Integral):
        return N.Const(int(value))
    if isinstance(value, numbers.Real):
        return N.Const(float(value))
    raise TraceError(
        f"cannot use a value of type {type(value).__name__} inside a kernel "
        "expression; kernels may combine indices, scalar arguments, array "
        "elements and Python numbers"
    )


def _binop(op: str, lhs: Any, rhs: Any) -> "SymScalar":
    return SymScalar(N.BinOp(op, as_node(lhs), as_node(rhs)))


def _compare(op: str, lhs: Any, rhs: Any) -> "SymBool":
    return SymBool(N.Compare(op, as_node(lhs), as_node(rhs)))


class SymScalar:
    """A symbolic scalar value flowing through a kernel trace."""

    __slots__ = ("_node",)

    def __init__(self, node: N.Node):
        self._node = node

    # -- arithmetic ---------------------------------------------------
    def __add__(self, other):
        return _binop("add", self, other)

    def __radd__(self, other):
        return _binop("add", other, self)

    def __sub__(self, other):
        return _binop("sub", self, other)

    def __rsub__(self, other):
        return _binop("sub", other, self)

    def __mul__(self, other):
        return _binop("mul", self, other)

    def __rmul__(self, other):
        return _binop("mul", other, self)

    def __truediv__(self, other):
        return _binop("truediv", self, other)

    def __rtruediv__(self, other):
        return _binop("truediv", other, self)

    def __floordiv__(self, other):
        return _binop("floordiv", self, other)

    def __rfloordiv__(self, other):
        return _binop("floordiv", other, self)

    def __mod__(self, other):
        return _binop("mod", self, other)

    def __rmod__(self, other):
        return _binop("mod", other, self)

    def __pow__(self, other):
        return _binop("pow", self, other)

    def __rpow__(self, other):
        return _binop("pow", other, self)

    def __neg__(self):
        return SymScalar(N.UnOp("neg", self._node))

    def __pos__(self):
        return self

    def __abs__(self):
        return SymScalar(N.UnOp("abs", self._node))

    # -- comparisons ---------------------------------------------------
    def __lt__(self, other):
        return _compare("lt", self, other)

    def __le__(self, other):
        return _compare("le", self, other)

    def __gt__(self, other):
        return _compare("gt", self, other)

    def __ge__(self, other):
        return _compare("ge", self, other)

    def __eq__(self, other):  # type: ignore[override]
        return _compare("eq", self, other)

    def __ne__(self, other):  # type: ignore[override]
        return _compare("ne", self, other)

    __hash__ = None  # type: ignore[assignment]  # mutable-semantics proxy

    # -- concretization traps -------------------------------------------
    def __bool__(self) -> bool:
        # A non-boolean scalar in boolean context (e.g. ``if alpha:``):
        # treat like a branch on ``value != 0`` for tracing purposes.
        return bool(self != 0)

    def __int__(self):
        raise ConcretizationRequired("int() of a symbolic scalar")

    def __index__(self):
        raise ConcretizationRequired("use of a symbolic scalar as an index/bound")

    def __float__(self):
        raise ConcretizationRequired("float() of a symbolic scalar")

    def __iter__(self):
        raise ConcretizationRequired("iteration over a symbolic scalar")

    def __len__(self):
        raise ConcretizationRequired("len() of a symbolic scalar")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SymScalar({N.format_node(self._node)})"


class SymBool(SymScalar):
    """A symbolic boolean.  ``bool(x)`` triggers branch forking."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return _recorder().query(self._node)

    def __and__(self, other):
        return SymBool(N.BoolOp("and", self._node, as_node(other)))

    def __rand__(self, other):
        return SymBool(N.BoolOp("and", as_node(other), self._node))

    def __or__(self, other):
        return SymBool(N.BoolOp("or", self._node, as_node(other)))

    def __ror__(self, other):
        return SymBool(N.BoolOp("or", as_node(other), self._node))

    def __xor__(self, other):
        return SymBool(N.BoolOp("xor", self._node, as_node(other)))

    def __rxor__(self, other):
        return SymBool(N.BoolOp("xor", as_node(other), self._node))

    def __invert__(self):
        return SymBool(N.Not(self._node))


class SymArray:
    """A symbolic array argument.

    Supports element loads (``a[i]``, ``a[i, j]``) and element stores
    (including augmented assignment, which Python desugars to a load, an
    arithmetic op, and a store).  Whole-array operations are deliberately
    unsupported inside kernels — the programming model, like JACC's, is
    one element per (virtual) thread.
    """

    __slots__ = ("_arg", "_shape")

    def __init__(self, pos: int, ndim: int, shape: tuple[int, ...]):
        self._arg = N.ArrayArg(pos, ndim)
        self._shape = shape

    @property
    def shape(self) -> tuple[int, ...]:
        """The concrete shape.  Observing it makes the trace
        shape-dependent (cached per shape, like a value specialization)."""
        rec = getattr(_TLS, "recorder", None)
        if rec is not None:
            rec.shape_used = True
        return self._shape

    @property
    def ndim(self) -> int:
        return self._arg.ndim

    def _index_nodes(self, key: Any) -> tuple[N.Node, ...]:
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) != self._arg.ndim:
            raise TraceError(
                f"array argument {self._arg.pos} is {self._arg.ndim}-D but was "
                f"indexed with {len(key)} indices; slicing and partial "
                "indexing are not supported inside kernels"
            )
        out = []
        for k in key:
            if isinstance(k, slice):
                raise TraceError(
                    "slicing an array inside a kernel is not supported; "
                    "kernels address one element per index"
                )
            out.append(as_node(k))
        return tuple(out)

    def __getitem__(self, key) -> SymScalar:
        return SymScalar(N.Load(self._arg, self._index_nodes(key)))

    def __setitem__(self, key, value) -> None:
        rec = _recorder()
        rec.emit_store(
            N.Store(
                self._arg,
                self._index_nodes(key),
                as_node(value),
                rec.current_condition(),
            )
        )

    def __len__(self) -> int:
        rec = getattr(_TLS, "recorder", None)
        if rec is not None:
            rec.shape_used = True
        return self._shape[0]

    def __iter__(self):
        raise TraceError(
            "iterating over an array inside a kernel is not supported"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SymArray(arg{self._arg.pos}, shape={self.shape})"


class _PathRecorder:
    """Records branch decisions and effects for one kernel execution.

    ``forced`` is the decision prefix to replay.  Queries beyond the
    prefix default to ``True`` and enqueue the ``False`` alternative.
    Effects emitted while replaying the forced prefix are duplicates of a
    previously explored execution and are skipped (``count <
    len(forced)``); effects at or past the divergence point are recorded
    with the currently-live condition conjunction.
    """

    __slots__ = ("forced", "taken", "conds", "count", "alternatives", "stores",
                 "max_paths", "paths_so_far", "shape_used")

    def __init__(self, forced: tuple[bool, ...], max_paths: int, paths_so_far: int):
        self.forced = forced
        self.taken: list[bool] = []
        self.conds: list[N.Node] = []
        self.count = 0
        self.alternatives: list[tuple[bool, ...]] = []
        self.stores: list[N.Store] = []
        self.max_paths = max_paths
        self.paths_so_far = paths_so_far
        self.shape_used = False

    def query(self, cond: N.Node) -> bool:
        idx = self.count
        if idx < len(self.forced):
            decision = self.forced[idx]
        else:
            decision = True
            alt = tuple(self.taken) + (False,)
            if self.paths_so_far + len(self.alternatives) + 1 >= self.max_paths:
                raise TooManyPathsError(self.max_paths)
            self.alternatives.append(alt)
        self.taken.append(decision)
        self.conds.append(cond)
        self.count += 1
        return decision

    def current_condition(self) -> Optional[N.Node]:
        """Conjunction of live branch decisions, or None at top level."""
        cond: Optional[N.Node] = None
        for c, taken in zip(self.conds, self.taken):
            term = c if taken else N.Not(c)
            cond = term if cond is None else N.BoolOp("and", cond, term)
        return cond

    def emit_store(self, store: N.Store) -> None:
        # Skip effects that are pure replays of an already-explored prefix.
        if self.count >= len(self.forced):
            self.stores.append(store)


def _make_symbolic_args(
    args: Sequence[Any],
    concretize_scalars: bool,
) -> tuple[list[Any], list[int], list[int], dict[int, Any]]:
    """Build the symbolic argument list for tracing.

    Returns ``(sym_args, array_positions, scalar_positions, const_args)``.
    """
    sym_args: list[Any] = []
    array_pos: list[int] = []
    scalar_pos: list[int] = []
    const_args: dict[int, Any] = {}
    for pos, a in enumerate(args):
        if isinstance(a, np.ndarray):
            if a.ndim < 1 or a.ndim > 3:
                raise TraceError(
                    f"array argument {pos} has ndim={a.ndim}; kernels support "
                    "1-D to 3-D arrays"
                )
            sym_args.append(SymArray(pos, a.ndim, a.shape))
            array_pos.append(pos)
        elif isinstance(a, (numbers.Number, np.generic)):
            if concretize_scalars:
                value = a.item() if isinstance(a, np.generic) else a
                sym_args.append(value)
                const_args[pos] = value
            else:
                sym_args.append(SymScalar(N.ScalarArg(pos)))
                scalar_pos.append(pos)
        else:
            raise TraceError(
                f"kernel argument {pos} has unsupported type "
                f"{type(a).__name__}; pass arrays and scalars only"
            )
    return sym_args, array_pos, scalar_pos, const_args


def _merge_results(
    path_results: list[tuple[Optional[N.Node], Optional[N.Node]]]
) -> Optional[N.Node]:
    """Merge per-path return expressions into one Select chain.

    ``path_results`` holds ``(condition, value)`` pairs in exploration
    order; a ``None`` value means the path fell off the end of the kernel
    without returning, which contributes the reduction-neutral 0.
    """
    if all(value is None for _, value in path_results):
        return None
    merged: Optional[N.Node] = None
    for cond, value in reversed(path_results):
        v = value if value is not None else N.Const(0.0)
        if merged is None or cond is None:
            merged = v
        else:
            merged = N.Select(cond, v, merged)
    return merged


def trace_kernel(
    fn: Callable,
    ndim: int,
    args: Sequence[Any],
    *,
    concretize_scalars: bool = False,
    max_paths: int = MAX_PATHS,
) -> N.Trace:
    """Trace a scalar kernel into a :class:`~repro.ir.nodes.Trace`.

    Parameters
    ----------
    fn:
        The kernel, with signature ``fn(i, *args)`` (``ndim == 1``),
        ``fn(i, j, *args)`` (2) or ``fn(i, j, k, *args)`` (3).
    ndim:
        Launch-domain rank.
    args:
        The *runtime* arguments.  Arrays contribute shape/rank to the
        trace; scalars are symbolic unless ``concretize_scalars``.
    concretize_scalars:
        Bake scalar argument values into the trace as constants.  Used by
        the compile driver after a :class:`ConcretizationRequired`.
    max_paths:
        Budget for branch forking; exceeded → :class:`TooManyPathsError`.
    """
    if ndim not in (1, 2, 3):
        raise TraceError(f"launch domain must be 1-D..3-D, got ndim={ndim}")
    index_syms = [SymScalar(N.Index(ax)) for ax in range(ndim)]
    sym_args, array_pos, scalar_pos, const_args = _make_symbolic_args(
        args, concretize_scalars
    )

    stores: list[N.Store] = []
    path_results: list[tuple[Optional[N.Node], Optional[N.Node]]] = []
    pending: list[tuple[bool, ...]] = [()]
    explored = 0
    shape_dependent = False

    while pending:
        forced = pending.pop(0)
        rec = _PathRecorder(forced, max_paths, explored + len(pending))
        prev = getattr(_TLS, "recorder", None)
        _TLS.recorder = rec
        try:
            ret = fn(*index_syms, *sym_args)
        finally:
            _TLS.recorder = prev
        explored += 1
        shape_dependent = shape_dependent or rec.shape_used
        stores.extend(rec.stores)
        ret_node: Optional[N.Node]
        if ret is None:
            ret_node = None
        else:
            ret_node = as_node(ret)
        path_results.append((rec.current_condition(), ret_node))
        pending.extend(rec.alternatives)

    result = _merge_results(path_results)
    implicit = (
        sum(1 for _, value in path_results if value is None)
        if result is not None
        else 0
    )
    return N.Trace(
        ndim=ndim,
        stores=stores,
        result=result,
        array_args=array_pos,
        scalar_args=scalar_pos,
        const_args=const_args,
        n_paths=explored,
        shape_dependent=shape_dependent,
        implicit_return_paths=implicit,
    )
