"""Portable math intrinsics for kernels.

Kernels run in two worlds: traced (arguments are symbolic proxies) and
interpreted (arguments are plain Python/NumPy numbers).  These intrinsics
dispatch on which world they are in, so a single kernel source works under
both executors — the same way Julia's ``sqrt`` works on both host values
and inside ``@cuda`` kernels.

``where``/``minimum``/``maximum`` additionally give kernel authors a
*non-forking* conditional: ``if``/``min``/``max`` on symbolic values fork
the trace (one path per outcome), which is correct but costs a path each;
``where(c, a, b)`` lowers to a single predicated select.
"""

from __future__ import annotations

import math
from typing import Any

from . import nodes as N
from .tracer import SymScalar, as_node

__all__ = [
    "sqrt",
    "exp",
    "log",
    "sin",
    "cos",
    "tan",
    "tanh",
    "floor",
    "ceil",
    "sign",
    "trunc_int",
    "where",
    "minimum",
    "maximum",
    "exclusive",
]


def _unary(op: str, math_fn) -> Any:
    def intrinsic(x: Any):
        if isinstance(x, SymScalar):
            return SymScalar(N.UnOp(op, x._node))
        return math_fn(x)

    intrinsic.__name__ = op
    intrinsic.__qualname__ = op
    intrinsic.__doc__ = f"Elementwise ``{op}``, usable inside kernels."
    return intrinsic


sqrt = _unary("sqrt", math.sqrt)
exp = _unary("exp", math.exp)
log = _unary("log", math.log)
sin = _unary("sin", math.sin)
cos = _unary("cos", math.cos)
tan = _unary("tan", math.tan)
tanh = _unary("tanh", math.tanh)
floor = _unary("floor", math.floor)
ceil = _unary("ceil", math.ceil)


def sign(x: Any):
    """Elementwise sign (-1, 0 or 1), usable inside kernels."""
    if isinstance(x, SymScalar):
        return SymScalar(N.UnOp("sign", x._node))
    return (x > 0) - (x < 0)


def trunc_int(x: Any):
    """Truncate toward zero to an integer — the paper's ``trunc(Int, x)``.

    Use this instead of ``int(x)`` inside kernels; ``int()`` on a symbolic
    value forces value specialization of the whole trace.
    """
    if isinstance(x, SymScalar):
        return SymScalar(N.Cast("int", x._node))
    return int(x)


def where(cond: Any, if_true: Any, if_false: Any):
    """Predicated select ``cond ? if_true : if_false`` (non-forking)."""
    if isinstance(cond, SymScalar) or isinstance(if_true, SymScalar) or isinstance(
        if_false, SymScalar
    ):
        return SymScalar(
            N.Select(as_node(cond), as_node(if_true), as_node(if_false))
        )
    return if_true if cond else if_false


def exclusive(index: Any, at: Any = 0):
    """Single-lane guard: true only where ``index == at``.

    The idiomatic way to mark an intentional single-iteration store so
    the race verifier (:mod:`repro.ir.verify`) can prove it safe — the
    JACC-style analogue of an "exclusive" section:

    .. code-block:: python

        def finalize(i, out, x):
            if exclusive(i):       # exactly one lane runs this store
                out[0] = x[0] * 2.0

    Equality on a launch index pins the guarded store to one iteration
    tuple, which satisfies the cross-iteration race rules (V101/V102).
    Works in both worlds: traced (returns a symbolic boolean the guard
    machinery understands) and interpreted (plain comparison).
    """
    return index == at  # SymScalar.__eq__ builds the Compare node


def minimum(a: Any, b: Any):
    """Two-argument min as a single select (non-forking)."""
    if isinstance(a, SymScalar) or isinstance(b, SymScalar):
        return SymScalar(N.BinOp("min", as_node(a), as_node(b)))
    return min(a, b)


def maximum(a: Any, b: Any):
    """Two-argument max as a single select (non-forking)."""
    if isinstance(a, SymScalar) or isinstance(b, SymScalar):
        return SymScalar(N.BinOp("max", as_node(a), as_node(b)))
    return max(a, b)
