"""Persistent cross-process compilation cache (warm-start precompilation).

Julia amortizes JIT cost *within* a process and pkgimages amortize it
*across* processes; our reproduction had only the first half — every
worker re-traced, re-verified, re-optimized, and re-lowered every kernel
from scratch.  This module is the second half: a content-addressed,
disk-backed tier layered **under** the in-memory
:class:`~repro.ir.compile.KernelCache`, so a warm worker goes straight
from source hash to execution.

Two entry kinds share one directory (``PYACC_COMPILE_CACHE``, default
``~/.cache/pyacc/compile``; set to ``off`` to disable):

* **kernel entries** (``k<sha256>.pkl``) — one per compiled kernel
  specialization.  Keyed on the kernel *source* fingerprint (closure
  cell values and referenced global scalars folded in), ndim, construct,
  executor rung, the argument type/shape/value signatures (mirroring the
  in-memory specialization ladder), the active verify mode, and the
  repro + NumPy versions.  The payload carries the optimized trace IR,
  the verifier's memoized diagnostics, the generated codegen source +
  its out-dtype certificates from the shape lattice, and the native
  rung's C spec — everything needed to rebuild a
  :class:`~repro.ir.compile.CompiledKernel` without tracing, verifying,
  or lowering.
* **program entries** (``g<sha256>.pkl``) — one per instantiated launch
  graph, keyed on the member-plan key tuple (each node's kernel digest,
  canonical array-aliasing pattern, dims, scalar values, slot maps,
  backend shape, enabled passes, validate mode).  The payload persists
  the pass pipeline's derived artifacts — fused kernels, DSE-rewritten
  kernels, hoisted-program prologue/main sources — plus the translation
  validator's clean certificate, so a warm
  ``LaunchGraph.instantiate()`` replays the recorded decisions without
  re-lowering anything and skips validation entirely.

Invalidation is structural: versions and modes are part of the key hash
(a mismatch can never *hit*) **and** re-checked in the payload header
(a colliding or hand-edited entry is unlinked and counted under
``invalidated``).  Corrupted/truncated entries fail the
:mod:`repro.ir.diskcache` frame check, are unlinked, and rebuild
silently.  Anything the fingerprint cannot prove stable across
processes — closures over arrays, exotic globals, unhashable scalars —
makes the kernel *ineligible* and it simply compiles as before: a wrong
hit is impossible by construction, a missed optimization is not a bug.

Cluster workers (forked) treat the parent's directory as read-only and
publish into per-worker spool directories; the parent promotes spooled
entries on worker respawn/shutdown (:func:`promote_spools`), so a
``WorkerLostError`` respawn warm-starts from disk instead of
recompiling.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import pickle
import sys
import threading
import time
import types
import weakref
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

import numpy as np

from . import diskcache

__all__ = [
    "CACHE_ENV",
    "FORMAT",
    "cache_dir",
    "enabled",
    "disk_stats",
    "reset_state",
    "kernel_keys",
    "load_kernel",
    "store_kernel",
    "note_verified",
    "record_compile",
    "record_verify_run",
    "graph_digest",
    "program_scope",
    "fused_lookup",
    "fused_record",
    "dse_lookup",
    "dse_record",
    "hoist_lookup",
    "hoist_record",
    "validated_lookup",
    "validated_record",
    "enter_worker_mode",
    "promote_spools",
]

CACHE_ENV = "PYACC_COMPILE_CACHE"

#: Payload format version — bump on any change to the entry layout.
FORMAT = 1

_OFF = {"off", "0", "none", "disabled"}

_SCALARS = (bool, int, float, complex, str, bytes, type(None))

#: Top-level packages whose contents are already covered by the versions
#: folded into every key (:func:`_env_tag`): a reference into one of
#: these may be fingerprinted by *name*, because any behavior change
#: ships with a version bump that invalidates the whole cache.  A module
#: or helper from anywhere else must be content-hashed — or make the
#: kernel ineligible.
_VERSION_KEYED_PKGS = ("repro", "numpy", "math", "builtins")

_LOCK = threading.Lock()
_STATS = {
    "disk_hits": 0,
    "disk_misses": 0,
    "stores": 0,
    "invalidated": 0,
    "bytes": 0,
    "ineligible": 0,
    "compiles": 0,
    "verify_runs": 0,
    "graph_hits": 0,
    "graph_misses": 0,
    "graph_stores": 0,
    "promoted": 0,
}

#: Worker spool directory (cluster children publish here; parent
#: promotes).  ``None`` = normal (direct-publish) mode.
_SPOOL: Optional[Path] = None

#: Source fingerprints memoized per code object (weak: test modules
#: come and go).  Cell/global values are folded in per call — they can
#: change under the same code object.
_CODE_FP: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


# ---------------------------------------------------------------------------
# Configuration / counters
# ---------------------------------------------------------------------------


def cache_dir() -> Optional[Path]:
    """Entry directory, or ``None`` when the persistent tier is off."""
    env = os.environ.get(CACHE_ENV)
    if env is not None:
        if env.strip().lower() in _OFF or not env.strip():
            return None
        return Path(env)
    return Path.home() / ".cache" / "pyacc" / "compile"


def enabled() -> bool:
    return cache_dir() is not None


def disk_stats() -> dict:
    """Locked snapshot of the persistent-tier counters.

    The headline block is ``{disk_hits, disk_misses, stores,
    invalidated, bytes}``; the rest are evidence counters the warm-start
    tests and bench assert on (``compiles``/``verify_runs`` count real
    ladder work performed this process, ``graph_*`` the program-entry
    tier, ``ineligible`` lookups skipped because the kernel cannot be
    content-addressed, ``promoted`` spool entries absorbed from cluster
    workers).
    """
    with _LOCK:
        out = dict(_STATS)
    out["enabled"] = enabled()
    return out


def reset_state(*, drop_counters: bool = True) -> None:
    """Test hook: zero the counters (entries on disk are never touched)."""
    global _SPOOL
    with _LOCK:
        if drop_counters:
            for k in _STATS:
                _STATS[k] = 0
        _SPOOL = None


def _bump(key: str, n: int = 1) -> None:
    with _LOCK:
        _STATS[key] += n


def record_compile() -> None:
    """Count one real compile (trace → optimize → lower) performed."""
    _bump("compiles")


def record_verify_run() -> None:
    """Count one real ``verify_trace`` execution performed."""
    _bump("verify_runs")


# ---------------------------------------------------------------------------
# Kernel fingerprinting (the "source hash" half of the key)
# ---------------------------------------------------------------------------


class _Ineligible(Exception):
    """The kernel/signature cannot be content-addressed across
    processes; the persistent tier silently steps aside."""


def _code_fingerprint(code: types.CodeType) -> str:
    """Hash of a code object's behavior when its source is unavailable:
    bytecode + names + non-code consts, nested code objects recursed."""
    h = hashlib.sha256()

    def feed(c: types.CodeType) -> None:
        h.update(c.co_code)
        h.update(repr((c.co_names, c.co_varnames, c.co_freevars)).encode())
        for const in c.co_consts:
            if isinstance(const, types.CodeType):
                feed(const)
            else:
                h.update(repr(const).encode())

    feed(code)
    return h.hexdigest()


def _source_fingerprint(fn: Callable) -> str:
    """Hash of the kernel's compiled behavior (bytecode, names, consts).

    Deliberately *not* ``inspect.getsource``: reading + tokenizing the
    defining file costs milliseconds per kernel on every process start —
    the very cost this cache exists to remove — and adds nothing the
    bytecode hash misses except comment edits, which cannot change the
    traced semantics.  Memoized per code object.
    """
    code = fn.__code__
    fp = _CODE_FP.get(code)
    if fp is None:
        fp = _code_fingerprint(code)
        try:
            _CODE_FP[code] = fp
        except TypeError:  # pragma: no cover - code objects weakref fine
            pass
    return fp


def _all_names(code: types.CodeType) -> set:
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _all_names(const)
    return names


def _scalar_or_raise(v: Any) -> Any:
    if isinstance(v, np.generic):
        v = v.item()
    if isinstance(v, _SCALARS):
        return v
    raise _Ineligible(f"non-scalar value of type {type(v).__name__}")


#: Captured/global arrays above this size make the kernel ineligible —
#: hashing a lattice-constant table per compile is cheap, hashing a
#: problem-sized field is not.
_ARRAY_FP_LIMIT = 1 << 16


def _array_part(a: np.ndarray) -> tuple:
    """Content hash of a small captured/global array (the tracer bakes
    its *values* into the trace, so the values must be in the key)."""
    if a.nbytes > _ARRAY_FP_LIMIT:
        raise _Ineligible(f"captured array of {a.nbytes} bytes")
    if a.dtype.hasobject:
        # tobytes() on object arrays serializes pointers — the "content
        # hash" would be nondeterministic across processes.
        raise _Ineligible("captured array with object dtype")
    c = np.ascontiguousarray(a)
    return (
        "arr",
        tuple(a.shape),
        a.dtype.str,
        hashlib.sha256(c.tobytes()).hexdigest(),
    )


def _value_part(v: Any) -> Any:
    if isinstance(v, np.ndarray):
        return _array_part(v)
    return _scalar_or_raise(v)


def _global_part(name: str, v: Any, depth: int, seen: set) -> tuple:
    """One referenced global's contribution to the fingerprint.

    Scalars fold in by value (module-level constants are baked at trace
    time); repro-internal and builtin callables are covered by the repro
    version already in the key; user helper functions recurse (two
    levels deep) into their own source.  Anything opaque — arrays with
    object dtype, non-version-keyed modules, helper chains too deep to
    hash, arbitrary objects — makes the kernel ineligible: its traced
    behavior cannot be proven stable from here, and a safe miss beats a
    wrong hit.
    """
    if isinstance(v, np.generic):
        v = v.item()
    if isinstance(v, _SCALARS):
        return ("g", name, type(v).__name__, repr(v))
    if isinstance(v, np.ndarray):
        return ("ga", name, _array_part(v))
    if isinstance(v, types.ModuleType):
        if v.__name__.partition(".")[0] in _VERSION_KEYED_PKGS:
            return ("gm", name, v.__name__)
        # mymod.helper(...) / mymod.CONST bakes the module's *contents*
        # into the trace; a name-only part would survive edits to them.
        raise _Ineligible(
            f"global module {name!r} ({v.__name__}) is not version-keyed"
        )
    if isinstance(v, np.ufunc):
        return ("gu", name, v.__name__)
    mod = getattr(v, "__module__", "") or ""
    if isinstance(v, types.FunctionType):
        if mod.partition(".")[0] in _VERSION_KEYED_PKGS:
            return ("gf", name, mod, v.__qualname__)
        if id(v) in seen:
            # Recursion cycle: this helper's body is already hashed
            # higher in the chain, so a name reference is sound.
            return ("gf", name, mod, v.__qualname__)
        if depth >= 2:
            # A name-only fallback here would leave the deepest helper's
            # body out of the key — stale warm hits after editing it.
            raise _Ineligible(f"helper chain through {name!r} too deep")
        seen.add(id(v))
        return ("gf+", name, _fn_parts(v, depth + 1, seen))
    if isinstance(v, (types.BuiltinFunctionType, type)):
        return ("gb", name, mod, getattr(v, "__qualname__", repr(v)))
    raise _Ineligible(f"global {name!r} of type {type(v).__name__}")


def _fn_parts(fn: Callable, depth: int = 0, seen: Optional[set] = None) -> tuple:
    if not isinstance(fn, types.FunctionType):
        raise _Ineligible(f"not a plain function: {type(fn).__name__}")
    if seen is None:
        seen = {id(fn)}
    parts: list = [
        fn.__module__,
        fn.__qualname__,
        _source_fingerprint(fn),
    ]
    if fn.__defaults__:
        parts.append(
            ("defaults", tuple(_scalar_or_raise(d) for d in fn.__defaults__))
        )
    cells = fn.__closure__ or ()
    for cell in cells:
        try:
            v = cell.cell_contents
        except ValueError:
            parts.append(("cell-empty",))
            continue
        parts.append(("cell", _value_part(v)))
    g = fn.__globals__
    for name in sorted(_all_names(fn.__code__)):
        if name in g:
            parts.append(_global_part(name, g[name], depth, seen))
    return tuple(parts)


def _fn_fingerprint(fn: Callable) -> str:
    """Content hash of everything the tracer can observe about ``fn``.

    Raises :class:`_Ineligible` when stability cannot be proven.
    """
    return hashlib.sha256(repr(_fn_parts(fn)).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


def _env_tag() -> tuple:
    """Versions every key hash folds in: a bump of any of them makes all
    prior entries structurally unreachable (silent miss + rebuild).

    The interpreter's ``cache_tag`` (the ``.pyc`` compatibility key)
    gates the marshaled bytecode the payloads carry — a different
    CPython build must rebuild rather than load foreign bytecode."""
    from .. import __version__ as repro_version

    return (
        FORMAT,
        repro_version,
        np.__version__,
        sys.implementation.cache_tag,
    )


def _stable_type_sig(args: Sequence[Any]) -> tuple:
    sig = []
    for a in args:
        if isinstance(a, np.ndarray):
            sig.append(("arr", a.ndim, a.dtype.str))
        else:
            v = a.item() if isinstance(a, np.generic) else a
            sig.append(("scl", type(v).__name__))
    return tuple(sig)


def _stable_shape_sig(args: Sequence[Any]) -> tuple:
    return tuple(
        tuple(a.shape) if isinstance(a, np.ndarray) else None for a in args
    )


def _stable_value_sig(args: Sequence[Any]) -> tuple:
    sig = []
    for a in args:
        if isinstance(a, np.ndarray):
            sig.append(None)
        else:
            sig.append(repr(_scalar_or_raise(a)))
    return tuple(sig)


def _digest(parts: tuple) -> str:
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


class KernelKeys:
    """The three digests of one call site (mirrors the in-memory
    base/shape/value specialization rungs) plus shared metadata."""

    __slots__ = ("base", "shape", "value", "meta")

    def __init__(self, base: str, shape: str, value: str, meta: dict):
        self.base = base
        self.shape = shape
        self.value = value
        self.meta = meta

    def for_rung(self, rung: str) -> str:
        return {"base": self.base, "shape": self.shape, "value": self.value}[
            rung
        ]


def kernel_keys(
    fn: Callable,
    ndim: int,
    reduce: bool,
    executor: str,
    args: Sequence[Any],
    max_paths: Optional[int],
) -> Optional[KernelKeys]:
    """Compute the disk keys for one compile, or ``None`` if ineligible
    (closure over arrays, exotic globals, unhashable scalars, or the
    tier is disabled)."""
    if not enabled():
        return None
    from .verify import active_verify_mode

    vmode = active_verify_mode()
    cc_id = None
    if executor == "native":
        # The toolchain is part of a native kernel's identity: a changed
        # (or broken) compiler must miss and recompile through the full
        # ladder, never warm-load an entry built by another toolchain.
        from .nativecache import _compiler_id, resolve_cc

        cc = resolve_cc()
        cc_id = None if cc is None else _compiler_id(cc)
    try:
        fp = _fn_fingerprint(fn)
        tsig = _stable_type_sig(args)
        ssig = _stable_shape_sig(args)
        vsig = _stable_value_sig(args)
    except _Ineligible:
        _bump("ineligible")
        return None
    head = (
        _env_tag(),
        fp,
        ndim,
        bool(reduce),
        executor,
        cc_id,
        vmode,
        max_paths,
        tsig,
    )
    meta = {
        "kernel": getattr(fn, "__qualname__", repr(fn)),
        "executor": executor,
        "verify_mode": vmode,
    }
    return KernelKeys(
        base=_digest(head),
        shape=_digest(head + ("shape", ssig)),
        value=_digest(head + ("shape", ssig, "values", vsig)),
        meta=meta,
    )


# ---------------------------------------------------------------------------
# Entry I/O
# ---------------------------------------------------------------------------


def _entry_path(digest: str, kind: str = "k") -> Optional[Path]:
    d = cache_dir()
    if d is None:
        return None
    return d / f"{kind}{digest}.pkl"


def _publish(digest: str, payload: dict, kind: str = "k") -> None:
    """Serialize and atomically publish one entry.

    Worker mode redirects the write into the per-worker spool; the
    parent promotes later.  Publish failures (read-only dir, disk full)
    degrade silently — the cache is an accelerator, never a correctness
    dependency.
    """
    d = cache_dir()
    if d is None:
        return
    target_dir = _SPOOL if _SPOOL is not None else d
    path = target_dir / f"{kind}{digest}.pkl"
    try:
        blob = pickle.dumps(payload, protocol=4)
        n = diskcache.write_entry(path, blob)
    except Exception:
        return
    _bump("stores")
    _bump("bytes", n)


def _read(digest: str, kind: str = "k") -> Optional[dict]:
    """Load + validate one entry; corrupted or version-mismatched
    entries are unlinked (``invalidated``) and read as a miss."""
    path = _entry_path(digest, kind)
    if path is None:
        return None
    try:
        blob = diskcache.read_entry(path)
    except diskcache.CorruptEntry:
        diskcache.unlink_quiet(path)
        _bump("invalidated")
        return None
    if blob is None:
        return None
    try:
        payload = pickle.loads(blob)
    except Exception:
        diskcache.unlink_quiet(path)
        _bump("invalidated")
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("env") != _env_tag()
    ):
        diskcache.unlink_quiet(path)
        _bump("invalidated")
        return None
    return payload


# ---------------------------------------------------------------------------
# Kernel entries
# ---------------------------------------------------------------------------


def _marshal_code(source: str, filename: str) -> Optional[bytes]:
    """Marshaled bytecode for one generated source (a parse-cache hit —
    the program was just compiled from it)."""
    from .codegen import _compile_source

    try:
        return marshal.dumps(_compile_source(source, filename))
    except Exception:
        return None


def _seed_code(source: str, filename: str, blob: Optional[bytes]) -> None:
    """Hand stored bytecode to the codegen parse cache; a bad blob just
    means the warm process re-parses."""
    if not blob:
        return
    from .codegen import seed_code

    try:
        seed_code(source, filename, marshal.loads(blob))
    except Exception:
        pass


def _codegen_parts(program) -> Optional[tuple]:
    if program is None:
        return None
    return (
        program.source,
        program.ndim,
        program.has_result,
        tuple(dt.str for dt in program.out_dtypes),
        _marshal_code(program.source, "<pyacc-codegen>"),
    )


def _native_spec(nk) -> Optional[dict]:
    if nk is None:
        return None
    return {
        "source": nk.source,
        "ndim": nk.ndim,
        "has_result": nk.has_result,
        "arr_order": nk._arr_order,
        "arr_dtype": nk._arr_dtype,
        "arr_rank": nk._arr_rank,
        "extent_slots": nk._extent_slots,
        "gather_slots": nk._gather_slots,
        "written": nk._written,
        "fscalar": nk._fscalar,
        "iscalar": nk._iscalar,
        "narrow_i4": nk._narrow_i4,
    }


def _verify_entries(ck) -> list:
    mem = list(getattr(ck, "_verify_cache", ()) or ())
    disk = list(getattr(ck, "_verify_cache_disk", ()) or ())
    return mem + disk


def kernel_payload(ck, rung: str, meta: Optional[dict] = None) -> dict:
    """The serializable form of one :class:`CompiledKernel`."""
    if ck.trace is not None:
        # Populate the trace's memoized load-analysis before pickling:
        # the memo slot travels with the trace, so warm graph passes
        # skip the walk entirely.
        from .deadstore import loaded_positions

        loaded_positions(ck.trace)
    return {
        "env": _env_tag(),
        "kind": "kernel",
        "rung": rung,
        "meta": dict(meta or getattr(ck, "_pcc_meta", {}) or {}),
        "ndim": ck.ndim,
        "mode": ck.mode,
        "reason": ck.fallback_reason,
        "trace": ck.trace,
        "stats": ck.stats,
        "codegen": _codegen_parts(ck.codegen),
        "native": _native_spec(ck.native),
        "native_decline": getattr(ck, "_native_decline", None),
        "verify": _verify_entries(ck),
    }


def rebuild_kernel(payload: dict, fn: Callable):
    """Payload → :class:`CompiledKernel`, without tracing or lowering.

    The codegen program recompiles from its stored source (an ``exec``,
    not a lowering); the native rung reloads its shared object through
    the artifact cache and degrades to codegen if the compiler/artifact
    is gone.  Returns ``None`` when reconstruction fails (the caller
    treats it as a miss and rebuilds).
    """
    from .cgen import NativeKernel
    from .codegen import CodegenProgram
    from .compile import CompiledKernel
    from .nativecache import NativeCompileError, record_decline

    try:
        cg = payload["codegen"]
        codegen = None
        if cg is not None:
            source, ndim, has_result, dtype_strs, code_blob = cg
            _seed_code(source, "<pyacc-codegen>", code_blob)
            codegen = CodegenProgram(
                source, ndim, has_result, tuple(np.dtype(s) for s in dtype_strs)
            )
        mode = payload["mode"]
        native = None
        spec = payload["native"]
        if spec is not None:
            try:
                native = NativeKernel(spec)
            except NativeCompileError as exc:
                record_decline(exc.reason)
                mode = mode.replace("native", "codegen", 1)
        elif payload.get("native_decline"):
            # The cold compile's native lowering declined; replay the
            # decline counter so warm and cold processes report the
            # same taxonomy.
            record_decline(payload["native_decline"])
        ck = CompiledKernel(
            fn=fn,
            ndim=payload["ndim"],
            mode=mode,
            trace=payload["trace"],
            stats=payload["stats"],
            fallback_reason=payload["reason"],
            codegen=codegen,
            native=native,
        )
    except Exception:
        return None
    if payload.get("native_decline"):
        object.__setattr__(ck, "_native_decline", payload["native_decline"])
    if payload.get("verify"):
        object.__setattr__(
            ck, "_verify_cache_disk", list(payload["verify"])
        )
    return ck


def _tag_kernel(ck, digest: str, rung: str, meta: dict) -> None:
    object.__setattr__(ck, "_pcc_digest", digest)
    object.__setattr__(ck, "_pcc_rung", rung)
    object.__setattr__(ck, "_pcc_meta", meta)


def load_kernel(keys: KernelKeys, fn: Callable):
    """Try the three specialization rungs on disk; returns
    ``(CompiledKernel, rung)`` or ``(None, None)``."""
    for rung in ("base", "shape", "value"):
        digest = keys.for_rung(rung)
        payload = _read(digest, "k")
        if payload is None or payload.get("rung") != rung:
            continue
        ck = rebuild_kernel(payload, fn)
        if ck is None:
            diskcache.unlink_quiet(_entry_path(digest, "k"))
            _bump("invalidated")
            continue
        _tag_kernel(ck, digest, rung, payload.get("meta", {}))
        _bump("disk_hits")
        return ck, rung
    _bump("disk_misses")
    return None, None


def store_kernel(keys: KernelKeys, rung: str, ck) -> None:
    """Publish a freshly compiled kernel under its rung's digest."""
    digest = keys.for_rung(rung)
    _tag_kernel(ck, digest, rung, keys.meta)
    _publish(digest, kernel_payload(ck, rung, keys.meta), "k")


def note_verified(ck) -> None:
    """Write-back: a fresh verification result was memoized on ``ck``.

    Re-publishes the kernel's entry so warm processes inherit the
    diagnostics and skip the analysis.  No-op for kernels the disk tier
    never addressed.
    """
    digest = getattr(ck, "_pcc_digest", None)
    rung = getattr(ck, "_pcc_rung", None)
    if digest is None or rung is None or not enabled():
        return
    _publish(digest, kernel_payload(ck, rung), "k")


# ---------------------------------------------------------------------------
# Program (launch-graph) entries
# ---------------------------------------------------------------------------


def kernel_digest_of(kernel) -> Optional[str]:
    return getattr(kernel, "_pcc_digest", None) if kernel is not None else None


def set_kernel_digest(kernel, parts: tuple) -> str:
    """Assign a synthetic content digest to a derived (fused/DSE) kernel
    so chained rewrites and hoist entries key on it stably."""
    digest = _digest(("derived",) + parts)
    object.__setattr__(kernel, "_pcc_digest", digest)
    return digest


def graph_digest(gnodes, backend, enabled_passes: frozenset, peephole: bool):
    """The member-plan key tuple, hashed — or ``None`` when any member
    cannot be content-addressed (its kernel has no digest, or a scalar
    argument is exotic)."""
    if not enabled():
        return None
    from .validate import active_validate_mode

    canon: dict[int, int] = {}
    parts: list = []
    try:
        for node in gnodes:
            plan = node.plan
            dg = kernel_digest_of(plan.kernel)
            if dg is None:
                return None
            argsig: list = []
            rargs = plan.resolved_args or []
            for pos, a in enumerate(rargs):
                if isinstance(a, np.ndarray):
                    ci = canon.setdefault(id(a), len(canon))
                    handle = True
                    if pos < len(plan.args):
                        from ..core.array import is_backend_array

                        handle = is_backend_array(plan.args[pos])
                    argsig.append(
                        ("a", ci, tuple(a.shape), a.dtype.str, handle)
                    )
                else:
                    argsig.append(("s", repr(_scalar_or_raise(a))))
            parts.append(
                (
                    dg,
                    plan.construct,
                    plan.op,
                    tuple(plan.dims),
                    tuple(argsig),
                    tuple(sorted(node.slot_map.items())),
                    tuple(sorted(node.const_slots)),
                )
            )
    except _Ineligible:
        return None
    parts.append(
        (
            "backend",
            type(backend).__name__,
            getattr(backend, "n_threads", None),
            bool(getattr(backend, "supports_schedule_pin", False)),
        )
    )
    parts.append(
        (
            "modes",
            tuple(sorted(enabled_passes)),
            bool(peephole),
            active_validate_mode(),
        )
    )
    parts.append(_env_tag())
    return _digest(tuple(parts))


class _ProgramScope:
    """Per-instantiation staging area for the program entry."""

    __slots__ = ("digest", "entry", "pending", "dirty")

    def __init__(self, digest: Optional[str]):
        self.digest = digest
        self.entry: dict = {}
        self.pending: dict = {}
        self.dirty = False

    def get(self, subkey: tuple):
        if subkey in self.pending:
            return self.pending[subkey]
        return self.entry.get(subkey, _MISSING)

    def put(self, subkey: tuple, value) -> None:
        self.pending[subkey] = value
        self.dirty = True


_MISSING = object()

#: Public sentinel for the program-tier lookups: "the active entry has
#: nothing for this subkey — compute and record".  Distinct from
#: ``None``, which is a *cached decline*.
MISSING = _MISSING

_TL = threading.local()


def _scope() -> Optional[_ProgramScope]:
    return getattr(_TL, "scope", None)


class program_scope:
    """Context manager bracketing ``LaunchGraph.instantiate``.

    Loads the program entry for ``digest`` (if any), exposes it to the
    pass-pipeline hooks via thread-local state, and publishes the merged
    entry on clean exit when anything new was derived.
    """

    def __init__(self, digest: Optional[str]):
        self.digest = digest

    def __enter__(self) -> _ProgramScope:
        scope = _ProgramScope(self.digest)
        if self.digest is not None:
            payload = _read(self.digest, "g")
            if payload is not None and payload.get("kind") == "program":
                scope.entry = payload.get("subentries", {})
                _bump("graph_hits")
            else:
                _bump("graph_misses")
        self._prev = _scope()
        _TL.scope = scope
        self.scope = scope
        return scope

    def __exit__(self, exc_type, exc, tb) -> None:
        _TL.scope = self._prev
        scope = self.scope
        if exc_type is None and scope.dirty and scope.digest is not None:
            merged = dict(scope.entry)
            merged.update(scope.pending)
            _publish(
                scope.digest,
                {"env": _env_tag(), "kind": "program", "subentries": merged},
                "g",
            )
            _bump("graph_stores")


def _alias_pairs(a_args, b_args) -> tuple:
    pairs = []
    for bp, bval in enumerate(b_args):
        if not isinstance(bval, np.ndarray):
            continue
        for ap, aval in enumerate(a_args):
            if aval is bval:
                pairs.append((ap, bp))
                break
    return tuple(pairs)


def _fuse_subkey(a_plan, b_plan) -> Optional[tuple]:
    da = kernel_digest_of(a_plan.kernel)
    db = kernel_digest_of(b_plan.kernel)
    if da is None or db is None:
        return None
    return (
        "fuse",
        da,
        db,
        _alias_pairs(a_plan.resolved_args, b_plan.resolved_args),
        tuple(a_plan.dims),
        b_plan.construct,
        b_plan.op,
    )


def fused_lookup(a_plan, b_plan, make_fn: Callable):
    """Cached fusion result for plan pair ``(a, b)``.

    Returns :data:`MISSING` when the active program entry has nothing
    (compute and record), ``None`` for a cached lowering decline, or the
    rebuilt fused :class:`CompiledKernel` (digest restamped so chained
    fusions and hoist entries key on it).  ``make_fn(name)`` supplies
    the placeholder function the fused plan carries.
    """
    scope = _scope()
    if scope is None:
        return _MISSING
    sub = _fuse_subkey(a_plan, b_plan)
    if sub is None:
        return _MISSING
    got = scope.get(sub)
    if got is _MISSING or got is None:
        return got
    fn = make_fn(got.get("meta", {}).get("fused_name", "fused"))
    ck = rebuild_kernel(got, fn)
    if ck is None:
        return _MISSING
    set_kernel_digest(ck, sub)
    return ck


def fused_record(a_plan, b_plan, fused_kernel, fused_name: str = "") -> None:
    """Record a fusion outcome (``fused_kernel=None`` = lowering
    declined) under the pair's subkey, and stamp the fused kernel with a
    derived digest for downstream (hoist/chained-fuse) keying."""
    scope = _scope()
    if scope is None:
        return
    sub = _fuse_subkey(a_plan, b_plan)
    if sub is None:
        return
    if fused_kernel is None:
        scope.put(sub, None)
        return
    set_kernel_digest(fused_kernel, sub)
    payload = kernel_payload(fused_kernel, "derived")
    payload["meta"] = {"fused_name": fused_name}
    scope.put(sub, payload)


def dse_lookup(kernel, drop_positions: tuple):
    """Cached DSE rewrite of ``kernel`` with stores to ``drop_positions``
    removed; same sentinel protocol as :func:`fused_lookup` (``None`` =
    cached lowering decline).  A hit returns the rebuilt kernel, which
    keeps the original ``fn``."""
    scope = _scope()
    if scope is None:
        return _MISSING
    dg = kernel_digest_of(kernel)
    if dg is None:
        return _MISSING
    sub = ("dse", dg, tuple(drop_positions))
    got = scope.get(sub)
    if got is _MISSING or got is None:
        return got
    ck = rebuild_kernel(got, kernel.fn)
    if ck is None:
        return _MISSING
    set_kernel_digest(ck, sub)
    return ck


def dse_record(kernel, drop_positions: tuple, new_kernel) -> None:
    scope = _scope()
    if scope is None:
        return
    dg = kernel_digest_of(kernel)
    if dg is None:
        return
    sub = ("dse", dg, tuple(drop_positions))
    if new_kernel is None:
        scope.put(sub, None)
        return
    set_kernel_digest(new_kernel, sub)
    scope.put(sub, kernel_payload(new_kernel, "derived"))


def hoist_lookup(kernel, const_arrays: tuple, const_scalars: tuple):
    """Cached :func:`lower_trace_hoisted` outcome; ``None`` payload =
    cached "nothing hoists" decline."""
    scope = _scope()
    if scope is None:
        return _MISSING
    dg = kernel_digest_of(kernel)
    if dg is None:
        return _MISSING
    sub = ("hoist", dg, tuple(const_arrays), tuple(sorted(const_scalars)))
    got = scope.get(sub)
    if got is _MISSING or got is None:
        return got
    from .codegen import HoistedProgram

    try:
        pro_src, src, ndim, has_result, dtype_strs, n_hoisted, blobs = got
        _seed_code(pro_src, "<pyacc-hoist-pro>", blobs[0])
        _seed_code(src, "<pyacc-hoist>", blobs[1])
        return HoistedProgram(
            pro_src,
            src,
            ndim,
            has_result,
            tuple(np.dtype(s) for s in dtype_strs),
            n_hoisted,
        )
    except Exception:
        return _MISSING


def hoist_record(
    kernel, const_arrays: tuple, const_scalars: tuple, hoisted
) -> None:
    scope = _scope()
    if scope is None:
        return
    dg = kernel_digest_of(kernel)
    if dg is None:
        return
    sub = ("hoist", dg, tuple(const_arrays), tuple(sorted(const_scalars)))
    if hoisted is None:
        scope.put(sub, None)
        return
    scope.put(
        sub,
        (
            hoisted.prologue_source,
            hoisted.source,
            hoisted.ndim,
            hoisted.has_result,
            tuple(dt.str for dt in hoisted.out_dtypes),
            hoisted.n_hoisted,
            (
                _marshal_code(hoisted.prologue_source, "<pyacc-hoist-pro>"),
                _marshal_code(hoisted.source, "<pyacc-hoist>"),
            ),
        ),
    )


def validated_lookup():
    """The stored validator certificate for the active program entry:
    a list of counter kwargs to replay, or ``None`` when the warm path
    must re-validate."""
    scope = _scope()
    if scope is None:
        return None
    got = scope.get(("validated",))
    return None if got is _MISSING else got


def validated_record(counter_trail: list) -> None:
    """Certify the active program clean, with the accounting trail the
    warm path replays so ``graph_stats()["validate"]`` counters match
    a cold instantiate exactly."""
    scope = _scope()
    if scope is None:
        return
    scope.put(("validated",), list(counter_trail))


# ---------------------------------------------------------------------------
# Cluster worker spool (read-only inherit + parent promotion)
# ---------------------------------------------------------------------------


def enter_worker_mode() -> None:
    """Switch this (forked worker) process to spool publishing.

    Lookups keep reading the parent's directory; stores land in a
    per-worker spool the parent promotes (the worker never writes the
    shared namespace directly, so a SIGKILLed worker can at worst leave
    an orphan spool file, never a half-promoted entry).
    """
    global _SPOOL
    d = cache_dir()
    if d is None:
        _SPOOL = None
        return
    _SPOOL = d / "spool" / f"w{os.getpid()}"


#: A spooling worker is between ``mkstemp`` and ``os.replace`` for at
#: most the time it takes to write one pickled entry; a ``.tmp`` file
#: older than this can only be the orphan of a dead worker.
_SPOOL_TMP_GRACE = 60.0


def _older_than(p: Path, age: float) -> bool:
    try:
        return (time.time() - p.stat().st_mtime) > age
    except OSError:
        return False


def promote_spools(pids: Optional[Sequence[int]] = None) -> int:
    """Parent-side: atomically promote spooled entries into the main
    directory; returns the number promoted.

    ``pids`` restricts promotion to those workers' spool directories —
    pass the pid of a worker *known to be dead* (the cluster
    supervisor's loss handler does), whose spool can also be reaped of
    stray temp files outright.  Without ``pids`` every spool is swept,
    which is safe at any time for the published ``.pkl`` entries
    (promotion is a same-filesystem rename), but a live worker may be
    mid-publish — between ``mkstemp`` and ``os.replace`` — so ``.tmp``
    files are only reaped once they are older than any in-flight write
    could be.
    """
    d = cache_dir()
    if d is None:
        return 0
    spool_root = d / "spool"
    promoted = 0
    try:
        worker_dirs = list(spool_root.iterdir())
    except OSError:
        return 0
    if pids is not None:
        want = {f"w{pid}" for pid in pids if pid is not None}
        worker_dirs = [wd for wd in worker_dirs if wd.name in want]
    for wd in worker_dirs:
        owner_dead = pids is not None
        try:
            entries = list(wd.iterdir())
        except OSError:
            continue
        for p in entries:
            if not p.name.endswith(".pkl"):
                if owner_dead or _older_than(p, _SPOOL_TMP_GRACE):
                    diskcache.unlink_quiet(p)
                continue
            try:
                os.replace(p, d / p.name)
                promoted += 1
            except OSError:
                diskcache.unlink_quiet(p)
        try:
            wd.rmdir()
        except OSError:
            pass
    if promoted:
        _bump("promoted", promoted)
    return promoted
