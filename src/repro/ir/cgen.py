"""Trace-to-C code generation: the *native* rung of the executor ladder.

The codegen tier (:mod:`repro.ir.codegen`) removed the per-launch IR walk
but still pays NumPy's per-ufunc dispatch and materializes whole-domain
temporaries.  Julia's LLVM JIT — the performance baseline the paper
leans on — emits one fused scalar loop instead.  This module closes that
last gap: a verified, optimized :class:`~repro.ir.nodes.Trace` is
lowered into a single C translation unit — fused scalar loop nests,
guards as branches, gathers via clamped indexing, reduces writing a
per-lane value buffer — compiled once with the system C compiler
(``PYACC_CC``, see :mod:`repro.ir.nativecache`) and called through
stdlib :mod:`ctypes` with per-chunk bounds, so every backend family
(serial / threads / cuda-sim / multi-sim) runs the same machine loop
over its own chunks.  The ctypes call releases the GIL, so the threads
backend gets genuine parallel chunk execution out of the rung for free.

Bit-identity contract
---------------------
The differential suite requires native == codegen == vector **bit for
bit** on every verified kernel, so the lowering only admits constructs
whose per-lane C evaluation provably reproduces the vectorizer's
whole-domain NumPy semantics:

* **Store groups.**  Stores are partitioned into consecutive groups with
  no intra-group cross-lane dependence: a group is either a run of
  identity-indexed stores whose expressions load group-written arrays
  only at identity positions (per-lane load-after-store then equals the
  vectorizer's whole-domain store-then-load), or a singleton scatter
  store.  Each group lowers to one loop nest; the loop boundary is the
  whole-domain barrier the vectorizer's store-by-store order implies.
* **Reduction fold.**  The C loop computes only the *per-lane* float64
  values (into an arena-leased buffer passed as a raw pointer); the fold
  itself stays in NumPy (``values.sum()`` — pairwise summation), so the
  reduce is bit-identical to the other rungs by construction instead of
  by re-implementing pairwise order in C.
* **Operation allowlist.**  Only ops whose C scalar semantics match the
  NumPy ufunc exactly are admitted (IEEE ``+ - * /``, NaN-propagating
  min/max ternaries, ``sqrt``/``floor``/``ceil``/``abs``/``neg``,
  comparisons, logical combinators, select, C-truncation casts); per-node
  dtypes come from the NEP-50 probe lattice (:mod:`repro.ir.shapes`) and
  operands are cast to the probed result dtype, float32 math runs in C
  ``float``.  Everything else — ``pow``/``mod``/``floordiv``,
  transcendentals with libm-vs-NumPy ULP drift, bool arithmetic, float
  indices — **declines** with a recorded reason and the kernel falls to
  codegen, exactly like codegen declines to vector.

Run-time pre-flight declines (see :class:`NativeKernel`) re-check the
assumptions the C code bakes in — dtype/rank/contiguity, identity-access
extents, written-array aliasing, weak-int narrowing — before any side
effect, so an ineligible *call* (not just an ineligible kernel) falls
back with the arrays untouched.
"""

from __future__ import annotations

import ctypes
from typing import Any, Optional, Sequence

import numpy as np

from ..core.exceptions import KernelExecutionError
from . import nodes as N
from .arena import ScratchArena, resolve as _resolve_arena
from .nativecache import (
    NativeCompileError,
    compile_source,
    record_decline,
)
from .shapes import Lattice, _static_identity
from .vectorizer import IndexDomain

__all__ = [
    "NativeLoweringError",
    "NativeDeclined",
    "NativeKernel",
    "lower_native",
]


class NativeLoweringError(Exception):
    """The trace uses a construct outside the native bit-identity
    contract; the compile ladder stays on codegen.  ``reason`` is the
    decline-taxonomy token recorded in ``cache_info()["native"]``."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason


class NativeDeclined(Exception):
    """A *call* failed the run-time pre-flight (taxonomy token in
    ``reason``); the caller falls through to the codegen program with
    every argument untouched."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# Dtype mapping
# ---------------------------------------------------------------------------

#: np dtype-code -> C element type.  The allowlist *is* the eligibility
#: certificate: anything else declines with ``dtype:<code>``.
_CTYPE = {
    "f8": "double",
    "f4": "float",
    "i8": "int64_t",
    "i4": "int32_t",
    "b1": "uint8_t",
}

_F8 = np.dtype(np.float64)
_BOOL = np.dtype(np.bool_)

#: Binary ops with exact C equivalents (min/max are special-cased).
_BIN_SYM = {"add": "+", "sub": "-", "mul": "*", "truediv": "/"}

#: Unary ops admitted (correctly-rounded / exact in both worlds).
_UN_OK = frozenset({"neg", "abs", "sqrt", "floor", "ceil"})

_CMP_SYM = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}
_BOOL_SYM = {"and": "&&", "or": "||", "xor": "!="}


def _dt_code(dt: np.dtype) -> str:
    return dt.kind + str(dt.itemsize)


def _ctype_of(dt: np.dtype) -> str:
    if not dt.isnative:
        raise NativeLoweringError(f"dtype:{dt.str}")
    ct = _CTYPE.get(_dt_code(dt))
    if ct is None:
        raise NativeLoweringError(f"dtype:{_dt_code(dt)}")
    return ct


def _float_literal(v: float) -> str:
    import math

    if math.isnan(v):
        return "NAN"
    if math.isinf(v):
        return "INFINITY" if v > 0 else "(-INFINITY)"
    return f"({v.hex()})" if v < 0 else v.hex()


# ---------------------------------------------------------------------------
# Store-group partitioning
# ---------------------------------------------------------------------------


def _store_roots(st: N.Store) -> list[N.Node]:
    roots = list(st.indices) + [st.value]
    if st.condition is not None:
        roots.append(st.condition)
    return roots


def _partition_groups(trace: N.Trace) -> list[list[N.Store]]:
    """Split stores into loops whose per-lane execution matches the
    vectorizer's whole-domain store order (see module docstring)."""
    ndim = trace.ndim
    groups: list[list[N.Store]] = []
    cur: list[N.Store] = []
    cur_written: set[int] = set()
    for st in trace.stores:
        if not _static_identity(st.indices, ndim):
            # A scatter store loops alone: cross-lane writes interleaved
            # with anything else would reorder against the vectorizer.
            if any(
                isinstance(nd, N.Load) and nd.array.pos == st.array.pos
                for root in _store_roots(st)
                for nd in N.walk(root)
            ):
                # Per-lane read/write of the *same* array through
                # computed indices (a permutation) cannot match the
                # gather-all-then-scatter whole-domain order.
                raise NativeLoweringError("scatter-read-overlap")
            if cur:
                groups.append(cur)
                cur, cur_written = [], set()
            groups.append([st])
            continue
        # Identity store: joins the current group unless it reads a
        # group-written array at non-identity indices.
        breaks = any(
            isinstance(nd, N.Load)
            and nd.array.pos in cur_written
            and not _static_identity(nd.indices, ndim)
            for root in _store_roots(st)
            for nd in N.walk(root)
        )
        if breaks and cur:
            groups.append(cur)
            cur, cur_written = [], set()
        cur.append(st)
        cur_written.add(st.array.pos)
    if cur:
        groups.append(cur)
    return groups


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


class _NativeLowering:
    def __init__(self, trace: N.Trace, args: Sequence[Any]):
        if np.dtype(np.intp).itemsize != 8:  # pragma: no cover - x86/arm64
            raise NativeLoweringError("intp-size")
        self.trace = trace
        self.ndim = trace.ndim
        self.args = args
        self.lat = Lattice(trace.ndim, args)
        # Per-array static facts, keyed by argument position.
        self.arr_dtype: dict[int, np.dtype] = {}
        self.arr_rank: dict[int, int] = {}
        self.extent_slots: set[int] = set()  # identity access: hi <= shape
        self.gather_slots: set[int] = set()  # has non-identity loads
        self.written: dict[int, bool] = {}  # pos -> has scatter store
        self.fscalar: list[int] = []  # positions staged as double
        self.iscalar: list[int] = []  # positions staged as int64
        self.narrow_i4: set[int] = set()  # weak ints cast to int32 sites
        # Emission state (reset per loop body).
        self.body: list[str] = []
        self.emitted: dict[int, tuple[str, Any]] = {}
        self.deps: dict[int, frozenset[int]] = {}
        self._tmp = 0
        self._scalar_codes: dict[int, tuple[str, Any]] = {}

    # -- argument staging --------------------------------------------------
    def _array(self, node: N.ArrayArg) -> int:
        pos = node.pos
        if pos not in self.arr_dtype:
            arr = self.args[pos]
            if not isinstance(arr, np.ndarray):
                raise NativeLoweringError("not-an-array")
            _ctype_of(arr.dtype)  # dtype allowlist
            self.arr_dtype[pos] = arr.dtype
            self.arr_rank[pos] = arr.ndim
        return pos

    def _scalar(self, pos: int) -> tuple[str, Any]:
        got = self._scalar_codes.get(pos)
        if got is not None:
            return got
        from .shapes import scalar_dtype

        elem = scalar_dtype(self.args[pos])
        if elem is None:
            raise NativeLoweringError("scalar-type")
        if isinstance(elem, np.dtype):
            _ctype_of(elem)
            kind = elem.kind
        else:
            kind = {"wf": "f", "wi": "i", "wb": "b"}[elem]
        if kind == "f":
            self.fscalar.append(pos)
        else:
            self.iscalar.append(pos)
        out = (f"s{pos}", elem)
        self._scalar_codes[pos] = out
        return out

    # -- expression emission ----------------------------------------------
    def _new_tmp(self) -> str:
        self._tmp += 1
        return f"t{self._tmp}"

    def _deps_of(self, *children: N.Node) -> frozenset[int]:
        out: frozenset[int] = frozenset()
        for c in children:
            d = self.deps.get(id(c))
            if d:
                out |= d
        return out

    def _invalidate(self, pos: int) -> None:
        dead = [nid for nid, dp in self.deps.items() if pos in dp]
        for nid in dead:
            self.emitted.pop(nid, None)
            self.deps.pop(nid, None)

    def _reset_body(self) -> None:
        self.body = []
        self.emitted = {}
        self.deps = {}

    def coerce(self, code_elem: tuple[str, Any], target: np.dtype) -> str:
        """C expression casting ``code`` (of lattice element ``elem``)
        to ``target`` — the NEP-50 operand cast the ufunc would apply."""
        code, elem = code_elem
        if isinstance(elem, np.dtype) and elem == target:
            return code
        tcode = _dt_code(target)
        if tcode == "b1":
            return f"(uint8_t)(({code}) != 0)"
        if tcode == "i4" and elem == "wi":
            # Weak Python int narrowed to int32: exact only when the
            # runtime value fits — checked per call in the pre-flight.
            if code.startswith("s") and code[1:].isdigit():
                self.narrow_i4.add(int(code[1:]))
        return f"({_CTYPE[tcode]})({code})"

    def _as_bool(self, code_elem: tuple[str, Any]) -> str:
        code, elem = code_elem
        if isinstance(elem, np.dtype) and elem == _BOOL:
            return code
        return f"(({code}) != 0)"

    def _node_dtype(self, node: N.Node) -> np.dtype:
        dt = self.lat.dtype(node)
        if not isinstance(dt, np.dtype):
            raise NativeLoweringError("dtype")
        _ctype_of(dt)
        return dt

    def emit(self, node: N.Node) -> tuple[str, Any]:
        """Emit ``node`` into the current loop body; returns
        ``(C code, lattice element)`` — a temp name for interior nodes,
        an inline literal/parameter for leaves."""
        if isinstance(node, N.Const):
            v = node.value
            if isinstance(v, bool):
                return ("1" if v else "0", "wb")
            if isinstance(v, int):
                if not -(2**63) <= v < 2**63:
                    raise NativeLoweringError("const-range")
                return (f"INT64_C({v})", "wi")
            if isinstance(v, float):
                return (_float_literal(v), "wf")
            raise NativeLoweringError("const-type")
        if isinstance(node, N.Index):
            if node.axis >= self.ndim:
                raise NativeLoweringError("axis-range")
            return (f"i{node.axis}", np.dtype(np.intp))
        if isinstance(node, N.ScalarArg):
            return self._scalar(node.pos)
        nid = id(node)
        got = self.emitted.get(nid)
        if got is not None:
            return got
        code, elem, deps = self._emit_inner(node)
        var = self._new_tmp()
        ct = _ctype_of(elem) if isinstance(elem, np.dtype) else "double"
        self.body.append(f"const {ct} {var} = {code};")
        out = (var, elem)
        self.emitted[nid] = out
        if deps:
            self.deps[nid] = deps
        return out

    def _flat_index(self, pos: int, idx_codes: list[str]) -> str:
        """Row-major flat offset from per-axis int64 index codes."""
        rank = self.arr_rank[pos]
        terms = []
        for ax, code in enumerate(idx_codes):
            if ax < rank - 1:
                terms.append(f"({code}) * a{pos}_s{ax}")
            else:
                terms.append(f"({code})")
        return " + ".join(terms)

    def _gather_index(self, pos: int, ix: N.Node, ax: int) -> str:
        """Clamped int64 index for a gather load (mirrors ``_gather``)."""
        code, elem = self.emit(ix)
        if isinstance(elem, np.dtype):
            if elem.kind not in "ib":
                raise NativeLoweringError("float-index")
            code = self.coerce((code, elem), np.dtype(np.int64))
        elif elem == "wi" or elem == "wb":
            pass  # already an int64-typed C expression
        else:
            raise NativeLoweringError("float-index")
        var = self._new_tmp()
        n = f"a{pos}_n{ax}"
        self.body.append(f"int64_t {var} = {code};")
        self.body.append(f"if ({var} < 0) {var} = 0;")
        self.body.append(f"if ({var} >= {n}) {var} = {n} - 1;")
        return var

    def _emit_inner(self, node: N.Node):
        if isinstance(node, N.Load):
            pos = self._array(node.array)
            arr_dt = self.arr_dtype[pos]
            deps = self._deps_of(*node.indices) | {pos}
            if _static_identity(node.indices, self.ndim):
                if self.arr_rank[pos] != self.ndim:
                    raise NativeLoweringError("rank")
                self.extent_slots.add(pos)
                flat = self._flat_index(
                    pos, [f"i{ax}" for ax in range(self.ndim)]
                )
            else:
                self.gather_slots.add(pos)
                idx = [
                    self._gather_index(pos, ix, ax)
                    for ax, ix in enumerate(node.indices)
                ]
                deps = self._deps_of(*node.indices) | {pos}
                flat = self._flat_index(pos, idx)
            code = f"a{pos}[{flat}]"
            if _dt_code(arr_dt) == "b1":
                code = f"({code} != 0)"
            return code, arr_dt, deps
        if isinstance(node, N.BinOp):
            if node.op not in _BIN_SYM and node.op not in ("min", "max"):
                raise NativeLoweringError(f"op:{node.op}")
            rdt = self._node_dtype(node)
            if rdt == _BOOL:
                raise NativeLoweringError("bool-arith")
            a = self.coerce(self.emit(node.lhs), rdt)
            b = self.coerce(self.emit(node.rhs), rdt)
            deps = self._deps_of(node.lhs, node.rhs)
            if node.op in ("min", "max"):
                rel = "<" if node.op == "min" else ">"
                if rdt.kind == "f":
                    # np.minimum/maximum propagate NaN from either side.
                    code = f"(({a} {rel} {b} || {a} != {a}) ? {a} : {b})"
                else:
                    code = f"(({a} {rel} {b}) ? {a} : {b})"
                return code, rdt, deps
            return f"({a} {_BIN_SYM[node.op]} {b})", rdt, deps
        if isinstance(node, N.UnOp):
            if node.op not in _UN_OK:
                raise NativeLoweringError(f"op:{node.op}")
            rdt = self._node_dtype(node)
            v = self.coerce(self.emit(node.operand), rdt)
            deps = self._deps_of(node.operand)
            if node.op == "neg":
                return f"(-({v}))", rdt, deps
            if node.op == "abs":
                if rdt.kind == "f":
                    fn = "fabsf" if rdt.itemsize == 4 else "fabs"
                    return f"{fn}({v})", rdt, deps
                return f"(({v}) < 0 ? -({v}) : ({v}))", rdt, deps
            # sqrt/floor/ceil: correctly-rounded libm = NumPy's loops.
            fn = node.op + ("f" if rdt.itemsize == 4 else "")
            return f"{fn}({v})", rdt, deps
        if isinstance(node, N.Compare):
            from .shapes import promote

            common = promote("add", self.lat.dtype(node.lhs), self.lat.dtype(node.rhs))
            if not isinstance(common, np.dtype):
                raise NativeLoweringError("dtype")
            _ctype_of(common)
            a = self.coerce(self.emit(node.lhs), common)
            b = self.coerce(self.emit(node.rhs), common)
            return (
                f"(uint8_t)({a} {_CMP_SYM[node.op]} {b})",
                _BOOL,
                self._deps_of(node.lhs, node.rhs),
            )
        if isinstance(node, N.BoolOp):
            a = self._as_bool(self.emit(node.lhs))
            b = self._as_bool(self.emit(node.rhs))
            return (
                f"(uint8_t)({a} {_BOOL_SYM[node.op]} {b})",
                _BOOL,
                self._deps_of(node.lhs, node.rhs),
            )
        if isinstance(node, N.Not):
            v = self._as_bool(self.emit(node.operand))
            return f"(uint8_t)(!{v})", _BOOL, self._deps_of(node.operand)
        if isinstance(node, N.Select):
            rdt = self._node_dtype(node)
            c = self._as_bool(self.emit(node.cond))
            t = self.coerce(self.emit(node.if_true), rdt)
            f = self.coerce(self.emit(node.if_false), rdt)
            return (
                f"({c} ? {t} : {f})",
                rdt,
                self._deps_of(node.cond, node.if_true, node.if_false),
            )
        if isinstance(node, N.Cast):
            target = np.dtype(np.int64 if node.kind == "int" else np.float64)
            v = self.coerce(self.emit(node.operand), target)
            return v, target, self._deps_of(node.operand)
        raise NativeLoweringError("node-type")

    # -- stores ------------------------------------------------------------
    def _store_cast(self, code_elem: tuple[str, Any], pos: int) -> str:
        """Value cast for assignment into array ``pos`` (NumPy's unsafe
        same-kind assignment cast = the C conversion)."""
        return self.coerce(code_elem, self.arr_dtype[pos])

    def emit_store(self, st: N.Store) -> None:
        pos = self._array(st.array)
        identity = _static_identity(st.indices, self.ndim)
        self.written.setdefault(pos, False)
        # Evaluation order mirrors codegen: value, then mask, then (for
        # scatters) the index expressions.
        val = self.emit(st.value)
        mask = None
        if st.condition is not None:
            mask = self._as_bool(self.emit(st.condition))
        if identity:
            if self.arr_rank[pos] != self.ndim:
                raise NativeLoweringError("rank")
            self.extent_slots.add(pos)
            flat = self._flat_index(pos, [f"i{ax}" for ax in range(self.ndim)])
            assign = f"a{pos}[{flat}] = {self._store_cast(val, pos)};"
            if mask is None:
                self.body.append(assign)
            else:
                self.body.append(f"if ({mask}) {{ {assign} }}")
            self._invalidate(pos)
            return
        # Scatter store: negative indices wrap, out-of-bounds on a taken
        # lane aborts the kernel (the Python wrapper raises the same
        # KernelExecutionError the vectorizer's fancy-index path does).
        self.written[pos] = True
        idx_codes = []
        for ax, ix in enumerate(st.indices):
            code, elem = self.emit(ix)
            if isinstance(elem, np.dtype):
                if elem.kind not in "ib":
                    raise NativeLoweringError("float-index")
                code = self.coerce((code, elem), np.dtype(np.int64))
            elif elem not in ("wi", "wb"):
                raise NativeLoweringError("float-index")
            idx_codes.append(code)
        guard_open = f"if ({mask}) {{" if mask is not None else "{"
        self.body.append(guard_open)
        checked = []
        for ax, code in enumerate(idx_codes):
            n = f"a{pos}_n{ax}"
            xv = self._new_tmp()
            self.body.append(f"  int64_t {xv} = {code};")
            self.body.append(
                f"  if ({xv} < -{n} || {xv} >= {n}) "
                f"{{ *err = {pos} + 1; return; }}"
            )
            self.body.append(f"  if ({xv} < 0) {xv} += {n};")
            checked.append(xv)
        flat = self._flat_index(pos, checked)
        self.body.append(f"  a{pos}[{flat}] = {self._store_cast(val, pos)};")
        self.body.append("}")
        self._invalidate(pos)

    # -- assembly ----------------------------------------------------------
    def _loop_nest(self, body: list[str], with_out: bool) -> list[str]:
        lines = []
        for ax in range(self.ndim):
            pad = "  " * ax
            lines.append(
                f"{pad}for (int64_t i{ax} = lo{ax}; i{ax} < hi{ax}; ++i{ax}) {{"
            )
        pad = "  " * self.ndim
        lines += [pad + line for line in body]
        for ax in reversed(range(self.ndim)):
            lines.append("  " * ax + "}")
        return lines

    def _out_flat(self) -> str:
        terms = "(i0 - lo0)"
        for ax in range(1, self.ndim):
            terms = f"({terms} * e{ax} + (i{ax} - lo{ax}))"
        return terms

    def lower(self) -> dict:
        groups = _partition_groups(self.trace)
        loops: list[list[str]] = []
        for group in groups:
            self._reset_body()
            for st in group:
                self.emit_store(st)
            loops.append(self._loop_nest(self.body, False))
        has_result = self.trace.result is not None
        result_loop: list[str] = []
        if has_result:
            self._reset_body()
            res = self.emit(self.trace.result)
            self.body.append(
                f"out[{self._out_flat()}] = "
                f"{self.coerce(res, _F8)};"
            )
            result_loop = self._loop_nest(self.body, True)

        arr_order = sorted(self.arr_dtype)
        lines = [
            "#include <stdint.h>",
            "#include <math.h>",
            "",
            "void pyacc_kernel(void **arrs, const int64_t *shp,",
            "                  const double *fsc, const int64_t *isc,",
            "                  const int64_t *bounds, double *out,",
            "                  int64_t *err) {",
            "  (void)arrs; (void)shp; (void)fsc; (void)isc;",
            "  (void)bounds; (void)out; (void)err;",
        ]
        off = 0
        for k, pos in enumerate(arr_order):
            ct = _CTYPE[_dt_code(self.arr_dtype[pos])]
            rank = self.arr_rank[pos]
            lines.append(f"  {ct} *a{pos} = ({ct} *)arrs[{k}];")
            for ax in range(rank):
                lines.append(
                    f"  const int64_t a{pos}_n{ax} = shp[{off + ax}];"
                )
            # Row-major strides (pre-flight requires C-contiguity).
            for ax in range(rank - 1):
                factors = " * ".join(
                    f"a{pos}_n{x}" for x in range(ax + 1, rank)
                )
                lines.append(f"  const int64_t a{pos}_s{ax} = {factors};")
            off += rank
        for k, pos in enumerate(self.fscalar):
            elem = self._scalar_codes[pos][1]
            if isinstance(elem, np.dtype):
                ct = _CTYPE[_dt_code(elem)]
                lines.append(f"  const {ct} s{pos} = ({ct})fsc[{k}];")
            else:
                lines.append(f"  const double s{pos} = fsc[{k}];")
        for k, pos in enumerate(self.iscalar):
            elem = self._scalar_codes[pos][1]
            if isinstance(elem, np.dtype):
                ct = _CTYPE[_dt_code(elem)]
                if ct == "uint8_t":
                    lines.append(
                        f"  const uint8_t s{pos} = (uint8_t)(isc[{k}] != 0);"
                    )
                else:
                    lines.append(f"  const {ct} s{pos} = ({ct})isc[{k}];")
            else:
                lines.append(f"  const int64_t s{pos} = isc[{k}];")
        for ax in range(self.ndim):
            lines.append(f"  const int64_t lo{ax} = bounds[{2 * ax}];")
            lines.append(f"  const int64_t hi{ax} = bounds[{2 * ax + 1}];")
        for ax in range(1, self.ndim):
            lines.append(f"  const int64_t e{ax} = hi{ax} - lo{ax};")
        lines.append("")
        for loop in loops:
            lines += ["  " + line for line in loop]
            lines.append("")
        if has_result:
            lines.append("  if (out) {")
            lines += ["  " + line for line in result_loop]
            lines.append("  }")
        lines.append("}")

        return {
            "source": "\n".join(lines) + "\n",
            "arr_order": tuple(arr_order),
            "arr_dtype": {p: self.arr_dtype[p] for p in arr_order},
            "arr_rank": {p: self.arr_rank[p] for p in arr_order},
            "extent_slots": tuple(sorted(self.extent_slots)),
            "gather_slots": frozenset(self.gather_slots),
            "written": dict(self.written),
            "fscalar": tuple(self.fscalar),
            "iscalar": tuple(self.iscalar),
            "narrow_i4": tuple(sorted(self.narrow_i4)),
            "has_result": has_result,
        }


# ---------------------------------------------------------------------------
# Runtime wrapper
# ---------------------------------------------------------------------------

_REDUCE_IDENTITY = {"add": 0.0, "min": float(np.inf), "max": float(-np.inf)}

_I32_MIN, _I32_MAX = -(2**31), 2**31 - 1
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

_ARGTYPES = [
    ctypes.POINTER(ctypes.c_void_p),
    ctypes.POINTER(ctypes.c_int64),
    ctypes.POINTER(ctypes.c_double),
    ctypes.POINTER(ctypes.c_int64),
    ctypes.POINTER(ctypes.c_int64),
    ctypes.POINTER(ctypes.c_double),
    ctypes.POINTER(ctypes.c_int64),
]

_OUT_PTR = ctypes.POINTER(ctypes.c_double)
_ADDRESSOF = ctypes.addressof
_RAW0 = ctypes.c_char * 0


def _data_ptr(arr: np.ndarray) -> int:
    """Raw data pointer without the ``.ctypes`` interface object.

    ``ndarray.ctypes`` constructs a fresh interface wrapper on every
    access (~3x the cost of the whole pointer extraction); going through
    the buffer protocol keeps the per-launch marshal overhead at the
    level of the C call itself.  Read-only arrays refuse the writable
    buffer protocol and take the attribute path.
    """
    try:
        return _ADDRESSOF(_RAW0.from_buffer(arr))
    except (TypeError, ValueError, BufferError):
        return arr.ctypes.data


class NativeKernel:
    """A trace compiled to a shared object, callable per chunk.

    ``run_for``/``run_reduce`` mirror the other rungs' entry points; a
    call whose arguments violate a baked-in assumption raises
    :class:`NativeDeclined` *before any side effect* and the compiled
    kernel falls through to its codegen program.
    """

    __slots__ = (
        "source",
        "ndim",
        "has_result",
        "_fn",
        "_arr_order",
        "_arr_dtype",
        "_arr_rank",
        "_extent_slots",
        "_gather_slots",
        "_written",
        "_fscalar",
        "_iscalar",
        "_narrow_i4",
        "_void_t",
        "_shp_t",
        "_fsc_t",
        "_isc_t",
        "_bounds_t",
    )

    def __init__(self, spec: dict):
        self.source = spec["source"]
        self.ndim = spec["ndim"]
        self.has_result = spec["has_result"]
        self._arr_order = spec["arr_order"]
        self._arr_dtype = spec["arr_dtype"]
        self._arr_rank = spec["arr_rank"]
        self._extent_slots = spec["extent_slots"]
        self._gather_slots = spec["gather_slots"]
        self._written = spec["written"]
        self._fscalar = spec["fscalar"]
        self._iscalar = spec["iscalar"]
        self._narrow_i4 = spec["narrow_i4"]
        fn = compile_source(self.source)
        fn.argtypes = _ARGTYPES
        self._fn = fn
        # Marshal buffer types, sized once: per-call construction from
        # plain ints is ~10x cheaper than the generic ctypes paths.
        n_shp = sum(self._arr_rank[p] for p in self._arr_order)
        self._void_t = ctypes.c_void_p * max(1, len(self._arr_order))
        self._shp_t = ctypes.c_int64 * max(1, n_shp)
        self._fsc_t = ctypes.c_double * max(1, len(self._fscalar))
        self._isc_t = ctypes.c_int64 * max(1, len(self._iscalar))
        self._bounds_t = ctypes.c_int64 * (2 * self.ndim)

    # -- pre-flight --------------------------------------------------------
    def _preflight(self, domain: IndexDomain, args: Sequence[Any]) -> None:
        if domain.ndim != self.ndim:
            raise NativeDeclined("domain-rank")
        for pos in self._arr_order:
            arr = args[pos]
            if not isinstance(arr, np.ndarray):
                raise NativeDeclined("not-an-array")
            if arr.dtype != self._arr_dtype[pos]:
                raise NativeDeclined("dtype-drift")
            if arr.ndim != self._arr_rank[pos]:
                raise NativeDeclined("rank-drift")
            if not arr.flags.c_contiguous:
                raise NativeDeclined("non-contiguous")
            if pos in self._written and not arr.flags.writeable:
                raise NativeDeclined("read-only")
        for pos in self._extent_slots:
            shape = args[pos].shape
            for ax, (lo, hi) in enumerate(domain.ranges):
                if hi > shape[ax]:
                    raise NativeDeclined("extent")
        # Written-array aliasing: per-lane loops can only reorder
        # against the vectorizer through shared storage, so any overlap
        # involving a scatter-written array, or a written array whose
        # alias is gather-loaded, declines.
        for w, w_scatter in self._written.items():
            aw = args[w]
            for o in self._arr_order:
                if o == w:
                    continue
                ao = args[o]
                if not (
                    w_scatter
                    or o in self._gather_slots
                    or self._written.get(o, False)
                    and o in self._written
                    and self._written[o]
                ):
                    continue
                if ao is aw or np.may_share_memory(aw, ao):
                    if w_scatter or o in self._gather_slots:
                        raise NativeDeclined("alias")
        for pos in self._narrow_i4:
            v = args[pos]
            if not _I32_MIN <= int(v) <= _I32_MAX:
                raise NativeDeclined("scalar-overflow")
        for pos in self._iscalar:
            v = int(args[pos])
            if not _I64_MIN <= v <= _I64_MAX:
                raise NativeDeclined("scalar-overflow")

    # -- invocation --------------------------------------------------------
    def _call(self, domain: IndexDomain, args: Sequence[Any], out) -> None:
        ptrs = []
        shp_vals = []
        for pos in self._arr_order:
            a = args[pos]
            ptrs.append(_data_ptr(a))
            shp_vals.extend(a.shape)
        arrs_c = self._void_t(*ptrs)
        shp_c = self._shp_t(*shp_vals)
        fsc_c = self._fsc_t(*[float(args[p]) for p in self._fscalar])
        isc_c = self._isc_t(*[int(args[p]) for p in self._iscalar])
        bounds_c = self._bounds_t(
            *[b for lo_hi in domain.ranges for b in lo_hi]
        )
        err_c = ctypes.c_int64(0)
        out_p = (
            ctypes.cast(_data_ptr(out), _OUT_PTR)
            if out is not None
            else None
        )
        # ctypes releases the GIL for the duration of the call — chunked
        # launches on the threads backend run truly in parallel here.
        self._fn(arrs_c, shp_c, fsc_c, isc_c, bounds_c, out_p, err_c)
        if err_c.value:
            raise KernelExecutionError(
                f"out-of-bounds store into argument {err_c.value - 1}: "
                "native scatter index outside the array extent"
            )

    def run_for(
        self,
        domain: IndexDomain,
        args: Sequence[Any],
        arena: Optional[ScratchArena] = None,
    ) -> None:
        self._preflight(domain, args)
        self._call(domain, args, None)

    def evaluate_values(
        self, domain: IndexDomain, args: Sequence[Any]
    ) -> np.ndarray:
        """Per-lane result values over ``domain`` (float64, domain
        shape) — the native analogue of
        :func:`repro.ir.vectorizer.evaluate_values`, used by the
        cuda-sim per-block reduction primitives.  Stores run too,
        exactly like the vectorizer's variant."""
        if not self.has_result:
            raise KernelExecutionError(
                "kernel returns no value on any path"
            )
        self._preflight(domain, args)
        buf = np.empty(domain.shape, dtype=np.float64)
        self._call(domain, args, buf)
        return buf

    def run_reduce(
        self,
        domain: IndexDomain,
        args: Sequence[Any],
        op: str = "add",
        arena: Optional[ScratchArena] = None,
    ) -> float:
        if not self.has_result:
            raise KernelExecutionError(
                "parallel_reduce kernel did not return a value on any path"
            )
        if op not in _REDUCE_IDENTITY:
            raise KernelExecutionError(f"unsupported reduction op {op!r}")
        if domain.size == 0:
            return _REDUCE_IDENTITY[op]
        self._preflight(domain, args)
        # Per-lane values land in an arena-leased float64 buffer (raw
        # pointer handed to C); the fold is NumPy's — same pairwise sum,
        # same bits as the codegen/vector rungs.
        frame = _resolve_arena(arena).frame()
        try:
            buf = frame.take(domain.shape, np.float64)
            self._call(domain, args, buf)
            if op == "add":
                return float(buf.sum())
            if op == "min":
                return float(buf.min())
            return float(buf.max())
        finally:
            frame.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NativeKernel ndim={self.ndim} arrays={len(self._arr_order)}>"
        )


def lower_native(trace: N.Trace, args: Sequence[Any]) -> NativeKernel:
    """Lower an optimized trace to a compiled :class:`NativeKernel`.

    Raises :class:`NativeLoweringError` (trace outside the bit-identity
    contract) or :class:`~repro.ir.nativecache.NativeCompileError`
    (compiler missing / compile / load failure); both carry the decline
    ``reason`` the caller records.  The caller keeps its codegen program
    as the fallback rung either way.
    """
    lowering = _NativeLowering(trace, args)
    try:
        spec = lowering.lower()
    except (NativeLoweringError, NativeCompileError):
        raise
    except Exception as exc:  # defensive: never break compilation
        raise NativeLoweringError("lowering-failed", str(exc)) from exc
    spec["ndim"] = trace.ndim
    return NativeKernel(spec)


def try_lower_native(
    trace: Optional[N.Trace], args: Sequence[Any]
) -> tuple[Optional[NativeKernel], Optional[str]]:
    """Best-effort native lowering: ``(kernel, None)`` on success,
    ``(None, reason)`` on decline — with the decline recorded in the
    native counters (see :func:`repro.ir.nativecache.native_stats`)."""
    if trace is None:
        return None, "no-trace"
    try:
        return lower_native(trace, args), None
    except (NativeLoweringError, NativeCompileError) as exc:
        record_decline(exc.reason)
        return None, exc.reason
