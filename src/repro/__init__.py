"""PyACC — a Python reproduction of JACC (Valero-Lara et al., SC 2024).

The public surface mirrors the paper's front end:

>>> import repro
>>> import numpy as np
>>> def axpy(i, alpha, x, y):
...     x[i] += alpha * y[i]
>>> def dot(i, x, y):
...     return x[i] * y[i]
>>> x = repro.array(np.ones(1000)); y = repro.array(np.ones(1000))
>>> repro.parallel_for(1000, axpy, 2.5, x, y)
>>> repro.parallel_reduce(1000, dot, x, y)
3500.0

Backend selection follows the paper's Preferences mechanism
(``LocalPreferences.toml`` / ``PYACC_BACKEND``) and defaults to the
threads (Base.Threads-analogue) backend; ``repro.set_backend("cuda-sim")``
switches to a simulated GPU, and ``repro.use_backend(...)`` scopes a
backend to the current thread/task only.  ``repro.launch(dims, f, *args,
sync=False)`` dispatches a reified ``LaunchPlan`` asynchronously;
``repro.synchronize()`` drains the queue.  See README.md and DESIGN.md.
"""

from .core import (
    ExecutionContext,
    LaunchHandle,
    LaunchPlan,
    active_backend,
    array,
    current_context,
    is_backend_array,
    launch,
    ones,
    parallel_for,
    parallel_reduce,
    reset_backend,
    set_backend,
    synchronize,
    to_host,
    use_backend,
    zeros,
)
from .backends import available_backends, register_backend
from .core.exceptions import (
    CheckpointError,
    DeviceError,
    KernelVerificationError,
    LaunchTimeoutError,
    PermanentDeviceError,
    TransientDeviceError,
    TranslationValidationError,
    WorkerLostError,
)
from .faults import (
    FaultPlan,
    InjectedFault,
    LaunchPolicy,
    global_fault_stats,
    set_fault_plan,
    set_launch_policy,
)
from .checkpoint import SolverCheckpoint
from .graph import (
    GraphCapture,
    GraphError,
    GraphRegion,
    InstantiatedGraph,
    LaunchGraph,
    ScalarSlot,
    graph_mode,
    graph_stats,
    graphs_enabled,
    passes_mode,
    reset_graph_stats,
    set_graph_mode,
    set_passes_mode,
)
from .ir import (
    Diagnostic,
    KernelCache,
    KernelVerificationWarning,
    cache_info,
    clear_cache,
    executor_mode,
    inspect_kernel,
    set_executor_mode,
    set_validate_mode,
    set_verify_mode,
    suppress,
    validate_mode,
    verify_kernel,
    verify_mode,
    verify_reduce_op,
)
from . import math


def cluster_stats() -> dict:
    """Process-wide cluster-backend counters (lazy import — the cluster
    backend module, like every backend, loads only when used)."""
    from .backends.cluster import cluster_stats as _stats

    return _stats()


def reset_cluster_stats() -> None:
    """Zero the cluster-backend counters (tests / bench isolation)."""
    from .backends.cluster import reset_cluster_stats as _reset

    _reset()


__version__ = "1.1.0"

__all__ = [
    "__version__",
    "CheckpointError",
    "DeviceError",
    "Diagnostic",
    "ExecutionContext",
    "FaultPlan",
    "GraphCapture",
    "GraphError",
    "GraphRegion",
    "InjectedFault",
    "InstantiatedGraph",
    "LaunchGraph",
    "KernelCache",
    "KernelVerificationError",
    "KernelVerificationWarning",
    "LaunchHandle",
    "LaunchPlan",
    "LaunchPolicy",
    "LaunchTimeoutError",
    "PermanentDeviceError",
    "ScalarSlot",
    "SolverCheckpoint",
    "TransientDeviceError",
    "TranslationValidationError",
    "WorkerLostError",
    "active_backend",
    "array",
    "available_backends",
    "cache_info",
    "clear_cache",
    "cluster_stats",
    "current_context",
    "executor_mode",
    "global_fault_stats",
    "graph_mode",
    "graph_stats",
    "graphs_enabled",
    "inspect_kernel",
    "passes_mode",
    "reset_graph_stats",
    "set_graph_mode",
    "set_executor_mode",
    "set_passes_mode",
    "set_fault_plan",
    "set_launch_policy",
    "set_validate_mode",
    "is_backend_array",
    "launch",
    "math",
    "ones",
    "parallel_for",
    "parallel_reduce",
    "register_backend",
    "reset_backend",
    "reset_cluster_stats",
    "set_backend",
    "set_verify_mode",
    "suppress",
    "synchronize",
    "to_host",
    "use_backend",
    "validate_mode",
    "verify_kernel",
    "verify_mode",
    "verify_reduce_op",
    "zeros",
]
