"""Hardware profiles for the paper's four evaluation architectures.

The paper measures on one AMD EPYC 7742 "Rome" CPU (Frontier/crusher-class
node), one AMD MI100, one NVIDIA A100 (Perlmutter) and one Intel Data
Center Max 1550 (Aurora).  We have none of that hardware, so the simulated
backends charge time from these analytic profiles instead (DESIGN.md §2).

Each profile carries:

* nominal link/launch/allocation latencies from public microbenchmark
  literature for each runtime (CUDA/HIP/Level Zero launch costs, PCIe/
  NVLink transfer latency), and
* **achieved bandwidth per kernel class** (`eff_bw`).  This is the one
  place the paper's *measured* results enter the model: achieved fractions
  of peak differ per kernel class and per software stack (Julia's
  Base.Threads BLAS-1 on Rome is far below STREAM; AMDGPU.jl reductions on
  MI100 are far below its HBM peak; oneAPI.jl on Max 1550 was young), and
  we calibrate those fractions so the model reproduces the paper's quoted
  speedups.  The calibration derivation — which paper number pins which
  entry — is spelled out next to each profile and asserted by
  ``tests/test_calibration.py``.

Kernel classes (see :func:`repro.perfmodel.model.classify`):

* ``stream``  — BLAS-1-like map kernels (AXPY, copies, scaled updates)
* ``stencil`` — neighbourhood-heavy kernels (the LBM D2Q9 pull)
* ``spmv``    — guarded few-point kernels (the CG tridiagonal matvec)
* ``reduce``  — 1-D reduction kernels (DOT)
* ``reduce2d``— multidimensional reductions (geometric-mean behaviour;
  the paper observes the AXPY/DOT gap shrinking in 2-D on every GPU)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = ["HardwareProfile", "PROFILES", "get_profile", "KERNEL_CLASSES"]

KERNEL_CLASSES = ("stream", "stencil", "spmv", "reduce", "reduce2d")


@dataclass(frozen=True)
class HardwareProfile:
    """Analytic description of one evaluation architecture.

    Attributes
    ----------
    name / display_name / vendor / kind:
        Identity; ``kind`` is ``"cpu"`` or ``"gpu"``.
    mem_bw:
        Nominal peak memory bandwidth (B/s) — documentation only; the
        model reads :attr:`eff_bw`.
    eff_bw:
        Achieved bandwidth (B/s) per kernel class (calibrated).
    peak_flops:
        FP64 peak (F/s) for the roofline compute term.
    launch_latency:
        Cost to launch + synchronize one kernel (s).  For the CPU this is
        the ``Threads.@threads`` fork/join cost.
    link_latency / link_bw:
        Host↔device transfer latency (s) and bandwidth (B/s).  Zero
        latency and infinite bandwidth on the CPU (no device boundary).
    alloc_latency:
        Cost of one device allocation (s) — the paper attributes JACC's
        2-D AXPY overhead on the A100 to extra allocations.
    n_cores / max_block_dim_x:
        Topology used by the backends (CPU chunk count, GPU launch math).
    """

    name: str
    display_name: str
    vendor: str
    kind: str
    mem_bw: float
    eff_bw: Mapping[str, float]
    peak_flops: float
    launch_latency: float
    link_latency: float
    link_bw: float
    alloc_latency: float
    n_cores: int = 1
    max_block_dim_x: int = 1024

    def __post_init__(self):
        missing = [c for c in KERNEL_CLASSES if c not in self.eff_bw]
        if missing:
            raise ValueError(
                f"profile {self.name!r} missing eff_bw for classes {missing}"
            )
        object.__setattr__(self, "eff_bw", MappingProxyType(dict(self.eff_bw)))

    @property
    def is_gpu(self) -> bool:
        return self.kind == "gpu"


def _geo(a: float, b: float) -> float:
    return math.sqrt(a * b)


# --------------------------------------------------------------------------
# AMD EPYC 7742 "Rome", 64 cores, 8×DDR4-3200 (204.8 GB/s nominal).
#
# Calibration: the paper reports the *same JACC AXPY code* running ~70x
# faster on the MI100 than on this CPU (§V-A), LBM ~14x (§V-B) and CG ~17x
# (§V-C).  With the MI100 entries below, those pin Rome's achieved
# bandwidths at ~13 GB/s (stream; Julia Base.Threads BLAS-1 well below
# STREAM — consistent with the paper's own measurement), ~52 GB/s
# (stencil; cache reuse across the 9 neighbour loads makes the CPU look
# *better* than STREAM per apparent byte) and ~40 GB/s for read-only
# reductions (the paper shows the CPU *winning* small DOT by ~2x).
_ROME = HardwareProfile(
    name="rome",
    display_name="AMD EPYC 7742 Rome (64c)",
    vendor="amd",
    kind="cpu",
    mem_bw=204.8e9,
    eff_bw={
        "stream": 13.2e9,
        "stencil": 52.0e9,
        "spmv": 20.0e9,
        "reduce": 40.0e9,
        "reduce2d": _geo(13.2e9, 40.0e9),
    },
    peak_flops=2.0e12,
    launch_latency=15e-6,  # Threads.@threads fork+join on 64 cores
    link_latency=0.0,
    link_bw=float("inf"),
    alloc_latency=1e-6,
    n_cores=64,
    max_block_dim_x=1,  # unused on CPU
)

# --------------------------------------------------------------------------
# AMD MI100, 1.23 TB/s HBM2, PCIe gen4 host link (Frontier's ExCL testbed
# node in the paper, not the MI250X production blades).
#
# Calibration: stream 0.92 TB/s (75% of peak — typical HIP triad);
# reductions only ~0.12 TB/s — the paper's Fig. 8 shows MI100 DOT far
# slower than AXPY *even at large N* (two kernels + slow host link), and
# CG lands at 17x vs Rome only if reduces drag it down this far.
_MI100 = HardwareProfile(
    name="mi100",
    display_name="AMD MI100",
    vendor="amd",
    kind="gpu",
    mem_bw=1.23e12,
    eff_bw={
        "stream": 0.92e12,
        "stencil": 0.738e12,
        "spmv": 0.50e12,
        "reduce": 0.123e12,
        "reduce2d": _geo(0.92e12, 0.123e12),
    },
    peak_flops=11.5e12,
    launch_latency=10e-6,
    link_latency=8e-6,
    link_bw=16e9,
    alloc_latency=8e-6,
    n_cores=120,  # compute units
    max_block_dim_x=1024,
)

# --------------------------------------------------------------------------
# NVIDIA A100-40GB (Perlmutter), 1.555 TB/s HBM2e, fast host link.
#
# Calibration: stream 1.09 TB/s (70%), reductions 0.93 TB/s — the paper
# notes the AXPY/DOT gap is "minimal when computing large vectors" on the
# A100; CG 68x vs Rome follows.
_A100 = HardwareProfile(
    name="a100",
    display_name="NVIDIA A100",
    vendor="nvidia",
    kind="gpu",
    mem_bw=1.555e12,
    eff_bw={
        "stream": 1.09e12,
        "stencil": 1.05e12,
        "spmv": 0.80e12,
        "reduce": 0.933e12,
        "reduce2d": _geo(1.09e12, 0.933e12),
    },
    peak_flops=9.7e12,
    launch_latency=6e-6,
    link_latency=5e-6,
    link_bw=25e9,
    alloc_latency=6e-6,
    n_cores=108,  # SMs
    max_block_dim_x=1024,
)

# --------------------------------------------------------------------------
# Intel Data Center GPU Max 1550 (Aurora), 3.28 TB/s nominal HBM2e.
#
# Calibration: the paper's Intel results are far below the card's nominal
# peak everywhere (oneAPI.jl was young): LBM only 6.5x vs Rome pins
# stencil at ~0.34 TB/s; CG at 4x vs Rome needs reduces near 0.045 TB/s;
# stream sits at 0.30 TB/s so Intel AXPY tracks the AMD GPU's *times*
# order-of-magnitude in Fig. 8 while staying behind on reductions.
_MAX1550 = HardwareProfile(
    name="max1550",
    display_name="Intel Max 1550",
    vendor="intel",
    kind="gpu",
    mem_bw=3.2768e12,
    eff_bw={
        "stream": 0.30e12,
        "stencil": 0.342e12,
        "spmv": 0.15e12,
        "reduce": 0.045e12,
        "reduce2d": _geo(0.30e12, 0.045e12),
    },
    peak_flops=26.0e12,
    launch_latency=12e-6,
    link_latency=10e-6,
    link_bw=20e9,
    alloc_latency=10e-6,
    n_cores=128,  # Xe cores per stack
    max_block_dim_x=1024,
)

PROFILES: Mapping[str, HardwareProfile] = MappingProxyType(
    {p.name: p for p in (_ROME, _MI100, _A100, _MAX1550)}
)


def get_profile(name: str) -> HardwareProfile:
    """Look up a profile by name (``rome``/``mi100``/``a100``/``max1550``)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown hardware profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
