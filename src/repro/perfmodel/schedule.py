"""Schedule selection: pick a worker split from the roofline model.

The threads backend's historical chunking rule is a fixed heuristic —
one chunk per worker once the domain passes ``min_parallel_size``, else
inline.  The graph pass pipeline (:mod:`repro.ir.program`) replaces that
with a modeled decision per fused node: given the node's static work
profile (:class:`~repro.ir.stats.TraceStats`) and lane count, charge
each candidate split ``w`` with

    t(w) = w * CHUNK_OVERHEAD + max(T_mem / min(w, BW_SAT), T_cmp / w)

— per-chunk submission overhead grows linearly in ``w``, the compute
term scales with every worker, but the memory term stops scaling once
``BW_SAT`` workers saturate the socket's bandwidth roof (the same
saturation shape as the paper's CPU scaling plots, where memory-bound
kernels flatline well before the core count).  The argmin is the chosen
split; ``w == 1`` means run inline.

Everything here is deterministic: same stats + lanes + profile → same
choice, which the scheduler-determinism tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.stats import TraceStats
from .model import PerfModel

__all__ = ["ScheduleChoice", "choose_workers", "CHUNK_OVERHEAD", "BW_SATURATION_WORKERS"]

#: Modeled seconds of pool-submission + synchronization cost per chunk.
CHUNK_OVERHEAD = 40e-6

#: Workers needed to reach a CPU socket's effective-bandwidth roof; more
#: workers than this do not speed up the memory term.
BW_SATURATION_WORKERS = 4


@dataclass(frozen=True)
class ScheduleChoice:
    """The modeled worker-split decision for one launch."""

    workers: int  #: chosen split; 1 → run inline, no pool
    predicted: float  #: modeled seconds at the chosen split
    #: ``(workers, modeled_seconds)`` for every candidate, in worker
    #: order — exposed so tests and ``repro.ir.inspect`` can audit the
    #: argmin.
    candidates: tuple = ()


def choose_workers(
    model: PerfModel,
    stats: TraceStats,
    lanes: int,
    ndim: int,
    max_workers: int,
) -> ScheduleChoice:
    """Pick the worker split minimizing the modeled launch time.

    Deterministic; ties resolve to the smallest split (fewer chunks,
    less overhead variance).
    """
    cost = model.for_cost(stats, lanes, ndim)
    t_mem = cost.bandwidth
    t_cmp = cost.compute
    candidates = []
    best_w = 1
    best_t = None
    for w in range(1, max(1, max_workers) + 1):
        overhead = (w - 1) * CHUNK_OVERHEAD  # inline (w=1) pays no pool cost
        t = overhead + max(
            t_mem / min(w, BW_SATURATION_WORKERS), t_cmp / w
        )
        candidates.append((w, t))
        if best_t is None or t < best_t:
            best_t = t
            best_w = w
    return ScheduleChoice(
        workers=best_w, predicted=best_t or 0.0, candidates=tuple(candidates)
    )
