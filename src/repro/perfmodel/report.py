"""Series containers and terminal rendering for the benchmark harness.

The paper's figures are log-log "time vs size" plots with one line per
(architecture, model) pair.  The harness produces :class:`Series` objects;
this module renders them as aligned tables (the rows the paper plots) and
as a rough ASCII log-log chart for quick shape checks in a terminal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Series", "Panel", "format_table", "ascii_chart", "format_timeline"]


@dataclass
class Series:
    """One line of a figure: a label and (size, seconds) points."""

    label: str
    sizes: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    def add(self, size: int, seconds: float) -> None:
        self.sizes.append(int(size))
        self.times.append(float(seconds))

    def time_at(self, size: int) -> float:
        """Time at an exact size (KeyError if the sweep didn't include it)."""
        try:
            return self.times[self.sizes.index(int(size))]
        except ValueError:
            raise KeyError(f"series {self.label!r} has no size {size}") from None

    def __len__(self) -> int:
        return len(self.sizes)


@dataclass
class Panel:
    """One figure panel: a title plus series sharing an x-axis."""

    title: str
    series: list[Series] = field(default_factory=list)

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"panel {self.title!r} has no series {label!r}")


def _fmt_time(t: float) -> str:
    if t <= 0 or not math.isfinite(t):
        return f"{t:.3g}"
    if t < 1e-6:
        return f"{t * 1e9:.3g}ns"
    if t < 1e-3:
        return f"{t * 1e6:.3g}us"
    if t < 1.0:
        return f"{t * 1e3:.3g}ms"
    return f"{t:.3g}s"


def format_table(panel: Panel) -> str:
    """Render a panel as an aligned size × series table."""
    if not panel.series:
        return f"== {panel.title} ==\n(no data)"
    sizes = panel.series[0].sizes
    headers = ["size"] + [s.label for s in panel.series]
    rows = []
    for k, size in enumerate(sizes):
        row = [str(size)]
        for s in panel.series:
            row.append(_fmt_time(s.times[k]) if k < len(s.times) else "-")
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) for c in range(len(headers))
    ]
    out = [f"== {panel.title} =="]
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for r in rows:
        out.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(out)


def format_timeline(events, limit: int = 50) -> str:
    """Render a device event log (``SimClock(record_events=True)``) as an
    aligned table: start / duration / kind / label.

    The simulated analogue of a profiler trace — used to answer "where
    did the modeled time go?" for a workload (e.g. the five reductions
    inside one CG iteration).
    """
    rows = [("t_start", "duration", "kind", "label")]
    shown = list(events)[:limit]
    for e in shown:
        rows.append((_fmt_time(e.start), _fmt_time(e.duration), e.kind, e.label))
    widths = [max(len(r[c]) for r in rows) for c in range(4)]
    out = ["  ".join(v.ljust(w) for v, w in zip(r, widths)).rstrip() for r in rows]
    hidden = len(list(events)) - len(shown)
    if hidden > 0:
        out.append(f"... {hidden} more events")
    return "\n".join(out)


def ascii_chart(panel: Panel, width: int = 72, height: int = 18) -> str:
    """Rough log-log ASCII rendering of a panel (one glyph per series)."""
    pts = [
        (s.sizes, s.times)
        for s in panel.series
        if s.sizes and any(t > 0 for t in s.times)
    ]
    if not pts:
        return f"== {panel.title} == (no data)"
    all_x = [x for xs, _ in pts for x in xs if x > 0]
    all_y = [y for _, ys in pts for y in ys if y > 0]
    lx0, lx1 = math.log10(min(all_x)), math.log10(max(all_x))
    ly0, ly1 = math.log10(min(all_y)), math.log10(max(all_y))
    lx1 = lx1 if lx1 > lx0 else lx0 + 1
    ly1 = ly1 if ly1 > ly0 else ly0 + 1
    grid = [[" "] * width for _ in range(height)]
    glyphs = "ox+*#@%&"
    for si, s in enumerate(panel.series):
        g = glyphs[si % len(glyphs)]
        for x, y in zip(s.sizes, s.times):
            if x <= 0 or y <= 0:
                continue
            cx = round((math.log10(x) - lx0) / (lx1 - lx0) * (width - 1))
            cy = round((math.log10(y) - ly0) / (ly1 - ly0) * (height - 1))
            grid[height - 1 - cy][cx] = g
    lines = [f"== {panel.title} ==  (log-log; y: time, x: size)"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "   ".join(
        f"{glyphs[si % len(glyphs)]}={s.label}" for si, s in enumerate(panel.series)
    )
    lines.append(legend)
    return "\n".join(lines)
