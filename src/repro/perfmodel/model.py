"""Analytic timing: roofline + latency model for launches and transfers.

Every modeled operation costs::

    t = fixed_latency + max(bandwidth_term, compute_term)

with ``bandwidth_term = lanes * bytes_per_lane / achieved_bw(class)`` and
``compute_term = lanes * flops_per_lane / peak_flops``.  The paper's
kernels are all strongly memory-bound, so the bandwidth term dominates at
large sizes and the fixed latencies dominate at small sizes — which is
exactly the structure of the paper's log-log figures (flat left tail,
linear right tail, crossovers where the terms exchange dominance).

Reductions are special-cased to the two-kernel scheme the paper's Fig. 3
device code (and JACC's GPU backends) use: a main kernel producing one
partial per block, a second kernel folding the partials, then a scalar
device→host copy.  On the CPU the fold is part of the single parallel
region.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.stats import TraceStats
from .profiles import HardwareProfile

__all__ = ["classify", "LaunchCost", "PerfModel"]

_PARTIAL_BLOCK = 512  # threads per block in the paper's reduction kernels


def classify(stats: TraceStats, ndim: int) -> str:
    """Map a kernel's static profile to a performance class.

    * reductions → ``reduce`` (1-D) / ``reduce2d`` (multi-D)
    * ≥10 distinct loads per lane → ``stencil`` (the LBM kernel)
    * multi-path control flow → ``spmv`` (guarded few-point kernels)
    * everything else → ``stream``
    """
    if stats.is_reduction:
        return "reduce" if ndim == 1 else "reduce2d"
    if stats.loads >= 10:
        return "stencil"
    if stats.n_paths > 1:
        return "spmv"
    return "stream"


@dataclass(frozen=True)
class LaunchCost:
    """Breakdown of one modeled operation (seconds)."""

    latency: float
    bandwidth: float
    compute: float
    transfer: float = 0.0

    @property
    def total(self) -> float:
        return self.latency + max(self.bandwidth, self.compute) + self.transfer


class PerfModel:
    """Timing oracle for one hardware profile."""

    def __init__(self, profile: HardwareProfile):
        self.profile = profile

    # -- kernels ---------------------------------------------------------
    def for_cost(self, stats: TraceStats, lanes: int, ndim: int) -> LaunchCost:
        """One ``parallel_for``-style launch (including synchronization)."""
        cls = classify(stats, ndim)
        return LaunchCost(
            latency=self.profile.launch_latency,
            bandwidth=lanes * stats.bytes_per_lane / self.profile.eff_bw[cls],
            compute=lanes * stats.flops / self.profile.peak_flops,
        )

    def reduce_cost(self, stats: TraceStats, lanes: int, ndim: int) -> LaunchCost:
        """A full reduction: map kernel + partial fold + scalar readback.

        GPU: two launches (paper Fig. 3) and a device→host scalar copy.
        CPU: one parallel region; the readback is free.
        """
        cls = classify(stats, ndim)
        p = self.profile
        bw = p.eff_bw[cls]
        main_bytes = lanes * stats.bytes_per_lane
        if p.is_gpu:
            n_partials = max(1, -(-lanes // _PARTIAL_BLOCK))
            partial_bytes = n_partials * 8 * 2  # write then read partials
            return LaunchCost(
                latency=2 * p.launch_latency,
                bandwidth=(main_bytes + partial_bytes) / bw,
                compute=lanes * stats.flops / p.peak_flops,
                transfer=p.link_latency + 8 / p.link_bw,
            )
        return LaunchCost(
            latency=p.launch_latency,
            bandwidth=main_bytes / bw,
            compute=lanes * stats.flops / p.peak_flops,
        )

    # -- memory ----------------------------------------------------------
    def transfer_cost(self, nbytes: int) -> float:
        """Host↔device copy of ``nbytes`` (0 on CPU profiles)."""
        p = self.profile
        if not p.is_gpu:
            return 0.0
        return p.link_latency + nbytes / p.link_bw

    def alloc_cost(self, count: int = 1) -> float:
        """``count`` device allocations."""
        return count * self.profile.alloc_latency
