"""Analytic performance model of the paper's four evaluation machines.

See DESIGN.md §2 (hardware substitution) and §5 (calibration targets)."""

from .model import LaunchCost, PerfModel, classify
from .overheads import OVERHEADS, PortableOverhead, get_overhead
from .profiles import KERNEL_CLASSES, PROFILES, HardwareProfile, get_profile
from .report import Panel, Series, ascii_chart, format_table
from .schedule import ScheduleChoice, choose_workers

__all__ = [
    "KERNEL_CLASSES",
    "LaunchCost",
    "OVERHEADS",
    "PROFILES",
    "Panel",
    "PerfModel",
    "PortableOverhead",
    "HardwareProfile",
    "ScheduleChoice",
    "Series",
    "ascii_chart",
    "choose_workers",
    "classify",
    "format_table",
    "get_overhead",
    "get_profile",
]
