"""Calibrated JACC-vs-native overhead coefficients, per backend.

The paper's central performance claim is that the portable layer costs
(almost) nothing relative to writing each backend's native kernel code —
with a handful of quantified exceptions.  We model the portable layer's
extra cost per construct with three knobs per backend, calibrated to those
exceptions:

* ``for_latency`` / ``reduce_latency`` — extra per-construct dispatch
  time.  The metaprogramming layer passes the kernel function as one more
  runtime parameter and re-derives the launch configuration, which shows
  up at small sizes and vanishes (relatively) at large sizes.
* ``for_allocs_2d`` — extra device allocations on multidimensional
  ``parallel_for``.  The paper: "there are slightly more allocations in
  the JACC code due to the metaprogramming nature of this approach",
  blamed for the visible JACC AXPY overhead on the A100 in 2-D (Fig. 9).
* ``reduce_bw_mult`` — multiplicative achieved-bandwidth factor on
  reductions.  The paper reports ≈35% JACC overhead for large-vector DOT
  on the Intel GPU (§V-A): 1/1.35 ≈ 0.74.

Exceptions calibrated (all from §V):
  - AMD MI100: JACC AXPY slower at small/medium sizes → large
    ``for_latency``.
  - NVIDIA A100: small JACC DOT overhead at small/medium sizes, and the
    2-D AXPY allocation overhead → ``reduce_latency`` + ``for_allocs_2d``.
  - Intel Max 1550: ≈35% DOT overhead at large sizes → ``reduce_bw_mult``.
  - Threads/CPU: "no significant differences" → tiny dispatch cost only.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = ["PortableOverhead", "OVERHEADS", "get_overhead"]


@dataclass(frozen=True)
class PortableOverhead:
    """Extra modeled cost of the portable front end on one backend."""

    for_latency: float = 0.0
    reduce_latency: float = 0.0
    for_allocs_2d: int = 0
    reduce_bw_mult: float = 1.0


OVERHEADS: Mapping[str, PortableOverhead] = MappingProxyType(
    {
        # Base.Threads analogue: the paper sees no significant JACC cost.
        "threads": PortableOverhead(for_latency=2e-6, reduce_latency=2e-6),
        "serial": PortableOverhead(),
        # CUDA / A100: small DOT overhead at small-medium sizes; extra
        # allocations on 2-D parallel_for (Fig. 9 discussion).
        "cuda-sim": PortableOverhead(
            for_latency=1e-6,
            reduce_latency=4e-6,
            for_allocs_2d=2,
        ),
        # AMDGPU / MI100: JACC AXPY visibly slower at small-medium sizes.
        "rocm-sim": PortableOverhead(
            for_latency=12e-6,
            reduce_latency=8e-6,
        ),
        # oneAPI / Max 1550: ≈35% large-vector DOT overhead.
        "oneapi-sim": PortableOverhead(
            for_latency=2e-6,
            reduce_latency=5e-6,
            reduce_bw_mult=1.0 / 1.35,
        ),
    }
)


def get_overhead(backend_name: str) -> PortableOverhead:
    """Overhead coefficients for a backend (zero-cost if unlisted)."""
    return OVERHEADS.get(backend_name, PortableOverhead())
