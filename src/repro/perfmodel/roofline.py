"""Roofline analysis: where each kernel sits on each machine's roof.

The model's timing rule is exactly the roofline law —
``t = latency + max(bytes/BW, flops/peak)`` — so every (kernel,
architecture) pair has a well-defined position: its arithmetic intensity
(flop/byte) against the machine balance (peak / achieved bandwidth).
This module computes and renders that placement, answering the question
the paper's §V keeps circling: *which kernels are bandwidth-bound where,
and how far from the roof do they sit* (the AXPY/DOT gap, the LBM's
relative immunity to portable-layer overhead, CG's reduction drag).

Used by ``tests/test_roofline.py`` and available to users as an analysis
API::

    from repro.perfmodel.roofline import roofline_report
    print(roofline_report([("axpy", axpy_stats, 1), ...]))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..ir.stats import TraceStats
from .model import classify
from .profiles import PROFILES, HardwareProfile, get_profile

__all__ = ["RooflinePoint", "place_kernel", "roofline_report"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's placement on one machine's roofline."""

    kernel: str
    profile: str
    kernel_class: str
    intensity: float  # flop/byte of the kernel
    balance: float  # flop/byte where the roofs meet (machine balance)
    bound: str  # "bandwidth" | "compute"
    attainable_flops: float  # F/s the roof allows at this intensity
    roof_fraction: float  # attainable / peak

    def __str__(self) -> str:
        return (
            f"{self.kernel:<12s} on {self.profile:<8s} [{self.kernel_class:<8s}] "
            f"I={self.intensity:6.3f} F/B  balance={self.balance:6.1f}  "
            f"{self.bound}-bound  attainable={self.attainable_flops / 1e9:8.1f} GF/s "
            f"({self.roof_fraction * 100:5.1f}% of peak)"
        )


def place_kernel(
    name: str, stats: TraceStats, ndim: int, profile: HardwareProfile
) -> RooflinePoint:
    """Place one kernel on one machine's roofline.

    The bandwidth roof uses the *achieved* bandwidth of the kernel's
    class (that is what the timing model charges), so the placement
    agrees exactly with the model's predictions.
    """
    cls = classify(stats, ndim)
    bw = profile.eff_bw[cls]
    balance = profile.peak_flops / bw
    intensity = stats.intensity
    if intensity <= 0:
        # pure data movement: pin to the bandwidth roof at zero flops
        return RooflinePoint(
            kernel=name,
            profile=profile.name,
            kernel_class=cls,
            intensity=0.0,
            balance=balance,
            bound="bandwidth",
            attainable_flops=0.0,
            roof_fraction=0.0,
        )
    attainable = min(profile.peak_flops, intensity * bw)
    bound = "bandwidth" if intensity < balance else "compute"
    return RooflinePoint(
        kernel=name,
        profile=profile.name,
        kernel_class=cls,
        intensity=intensity,
        balance=balance,
        bound=bound,
        attainable_flops=attainable,
        roof_fraction=attainable / profile.peak_flops,
    )


def roofline_report(
    kernels: Sequence[tuple[str, TraceStats, int]],
    profiles: Iterable[str] = ("rome", "mi100", "a100", "max1550"),
) -> str:
    """Render the full kernels × machines placement table.

    ``kernels`` holds ``(name, stats, ndim)`` triples (stats from
    :func:`repro.ir.stats.analyze` or ``CompiledKernel.stats``).
    """
    lines = ["== roofline placement (achieved-bandwidth roofs) =="]
    for pname in profiles:
        profile = get_profile(pname)
        lines.append(
            f"-- {profile.display_name}: peak {profile.peak_flops / 1e12:.1f} TF/s --"
        )
        for name, stats, ndim in kernels:
            lines.append("  " + str(place_kernel(name, stats, ndim, profile)))
    return "\n".join(lines)


def paper_kernel_placements() -> list[RooflinePoint]:
    """Placements of the paper's four workload kernels on all machines
    (convenience for reports and tests)."""
    import numpy as np

    from ..apps.blas import axpy_kernel_1d, dot_kernel_1d
    from ..apps.cg import matvec_tridiag_kernel
    from ..apps.lbm import CX, CY, WEIGHTS, lbm_kernel
    from ..ir.compile import compile_kernel

    ones = np.ones(64)
    f = np.ones(9 * 64)
    kernels = [
        ("axpy", compile_kernel(axpy_kernel_1d, 1, [2.5, ones, ones]).stats, 1),
        (
            "dot",
            compile_kernel(dot_kernel_1d, 1, [ones, ones], reduce=True).stats,
            1,
        ),
        (
            "matvec",
            compile_kernel(
                matvec_tridiag_kernel, 1, [ones, ones, ones, ones, ones.copy(), 64]
            ).stats,
            1,
        ),
        (
            "lbm",
            compile_kernel(
                lbm_kernel,
                2,
                [f.copy(), f.copy(), f.copy(), 0.8, WEIGHTS, CX, CY, 8],
            ).stats,
            2,
        ),
    ]
    out = []
    for pname in PROFILES:
        for name, stats, ndim in kernels:
            out.append(place_kernel(name, stats, ndim, get_profile(pname)))
    return out
