"""The backend contract: compute + memory components (paper Fig. 1).

A JACC backend supplies two things — a *memory* component (how
``JACC.array`` materializes data on the target and how results come back)
and a *compute* component (how a compiled kernel is executed over a launch
domain).  Everything else (tracing, caching, launch math, the public API)
is shared, which is precisely the "lightweight front end" claim of the
paper.

Accounting
----------
Every backend carries an :class:`Accounting` record.  Wall-clock time is
always measurable from outside; *modeled* time (``sim_time``) is advanced
by backends that own an analytic performance profile (the GPU simulators
always do; the threads backend does when one is attached) so the benchmark
harness can put all four of the paper's architectures on one consistent
time axis.  ``alloc_count`` exists because the paper attributes JACC's 2-D
AXPY overhead on the A100 to extra allocations made by the
metaprogramming layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ..ir.compile import CompiledKernel
from ..ir.vectorizer import IndexDomain
from .plan import LaunchPlan, LaunchSchedule

__all__ = ["Accounting", "Backend", "normalize_dims"]


@dataclass
class Accounting:
    """Operation counters + modeled time for one backend instance."""

    n_for: int = 0
    n_reduce: int = 0
    n_kernel_launches: int = 0
    n_h2d: int = 0
    n_d2h: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    alloc_count: int = 0
    alloc_bytes: int = 0
    sim_time: float = 0.0

    def snapshot(self) -> dict:
        return dict(self.__dict__)

    def reset(self) -> None:
        for k in self.__dict__:
            setattr(self, k, 0 if k != "sim_time" else 0.0)


def _as_launch_extent(d) -> int:
    """One launch extent: a genuine integer (bools and floats rejected,
    so ``parallel_for(n / 2, ...)`` fails here with a clear message
    instead of silently truncating or blowing up inside a backend)."""
    if isinstance(d, (bool, np.bool_)) or not isinstance(d, (int, np.integer)):
        raise ValueError(
            f"launch dims must be integers, got {d!r} "
            f"({type(d).__name__}); use // for integer division"
        )
    return int(d)


def normalize_dims(dims) -> tuple[int, ...]:
    """Accept the paper's ``N`` / ``(M, N)`` / ``(L, M, N)`` launch spec.

    Validates at the construct boundary: extents must be genuine
    integers (no bools, no floats) and strictly positive, in a 1-D..3-D
    tuple.  Anything else raises :class:`ValueError` here rather than
    deep inside a backend.
    """
    if isinstance(dims, (int, np.integer)) and not isinstance(
        dims, (bool, np.bool_)
    ):
        out: tuple[int, ...] = (int(dims),)
    else:
        try:
            items = tuple(dims)
        except TypeError:
            raise ValueError(
                f"launch dims must be an int or a tuple of ints, got {dims!r}"
            ) from None
        out = tuple(_as_launch_extent(d) for d in items)
    if not 1 <= len(out) <= 3:
        raise ValueError(f"launch domain must be 1-D..3-D, got {out!r}")
    if any(d <= 0 for d in out):
        raise ValueError(f"launch dims must be positive, got {out!r}")
    return out


class Backend(ABC):
    """Abstract backend.  Subclasses: serial, threads, gpusim, multidevice."""

    #: Registry name, e.g. ``"threads"`` or ``"cuda-sim"``.
    name: str = "?"
    #: ``"cpu"`` or ``"gpu"`` — decides coarse vs fine decomposition.
    device_kind: str = "cpu"
    #: True when ``schedule()`` honors ``plan.schedule_pin`` (set by the
    #: graph pass pipeline's perfmodel-driven scheduler).  Backends whose
    #: decomposition is stateful (multi-device failover re-splits) must
    #: leave this False so the pass declines instead of pinning a stale
    #: split.
    supports_schedule_pin: bool = False

    def __init__(self) -> None:
        self.accounting = Accounting()

    # ---- memory component --------------------------------------------
    @abstractmethod
    def array(self, data: Any) -> Any:
        """``JACC.array``: materialize host data on this backend.

        Returns the backend's native array handle (a plain ndarray for
        CPU backends, a device-array wrapper for simulated GPUs).
        """

    @abstractmethod
    def to_host(self, arr: Any) -> np.ndarray:
        """Copy a backend array back to a host ndarray."""

    @abstractmethod
    def unwrap(self, arr: Any) -> np.ndarray:
        """Expose the raw ndarray storage a kernel executes against."""

    # ---- compute component --------------------------------------------
    def schedule(self, plan: LaunchPlan) -> LaunchSchedule:
        """Decide the launch shape for a staged plan.

        Called during the pipeline's schedule stage; the decision is
        recorded on the plan so :meth:`execute` consumes it instead of
        recomputing.  Default: one full-domain chunk run inline —
        backends with chunking (threads, multi-device) or a device
        launch shape (GPU simulators) override.
        """
        return LaunchSchedule(domains=(IndexDomain.full(plan.dims),))

    def schedule_epoch(self) -> int:
        """Monotonic staleness counter for recorded schedules.

        A :class:`LaunchSchedule` computed by :meth:`schedule` stays
        valid while this value is unchanged.  Backends whose chunking
        decisions can shift between launches (the multi-device backend
        drops failed devices from its dispatch set) bump it; captured
        launch graphs compare epochs before replaying and re-schedule
        their recorded plans on a mismatch.
        """
        return 0

    @abstractmethod
    def execute(self, plan: LaunchPlan) -> Optional[float]:
        """Execute a fully staged :class:`LaunchPlan`, then synchronize
        (JACC is a synchronous API).

        The plan carries the compiled kernel, resolved args and the
        recorded :class:`LaunchSchedule`.  Returns the folded value for
        reduce plans, ``None`` for for-plans.
        """

    def run_for(
        self,
        dims: tuple[int, ...],
        kernel: CompiledKernel,
        args: Sequence[Any],
    ) -> None:
        """Execute a compiled for-kernel over the full domain.

        Thin shim over :meth:`execute` kept for native code paths (the
        paper's device-specific baselines) and direct backend use; the
        portable front end stages a :class:`LaunchPlan` instead.
        """
        self.execute(self._plan_for("for", dims, kernel, args))

    def run_reduce(
        self,
        dims: tuple[int, ...],
        kernel: CompiledKernel,
        args: Sequence[Any],
        op: str = "add",
    ) -> float:
        """Execute a compiled reduce-kernel and return the folded value.

        Thin shim over :meth:`execute`, like :meth:`run_for`.
        """
        return self.execute(self._plan_for("reduce", dims, kernel, args, op=op))

    def _plan_for(
        self,
        construct: str,
        dims: tuple[int, ...],
        kernel: CompiledKernel,
        args: Sequence[Any],
        op: str = "add",
    ) -> LaunchPlan:
        """Stage a plan directly against this backend (no context)."""
        plan = LaunchPlan(
            construct=construct,
            dims=tuple(int(d) for d in dims),
            fn=kernel.fn,
            args=tuple(args),
            op=op,
        )
        plan.backend = self
        plan.resolved_args = list(args)
        plan.kernel = kernel
        # Native paths skip the resolve stage; draw scratch buffers from
        # the calling context's arena anyway so direct backend use pools
        # temporaries exactly like staged dispatch.
        from .context import current_context

        ctx = current_context()
        plan.arena = ctx.arena
        # Native launches honour the same transient-retry contract as
        # staged dispatch (the in-backend retry loop reads plan.policy).
        plan.policy = ctx.launch_policy
        plan.schedule = self.schedule(plan)
        return plan

    def synchronize(self) -> None:
        """Block until outstanding work completes.  CPU backends are
        synchronous already; simulated devices override."""

    # ---- dispatch-overhead hook -----------------------------------------
    def account_portable_dispatch(self, construct: str, dims: tuple[int, ...]) -> None:
        """Charge the modeled cost of going through the portable front end
        (vs calling the backend natively).  Default: free — overridden by
        backends with a calibrated overhead profile."""

    # ---- convenience ---------------------------------------------------
    def resolve_args(self, args: Sequence[Any]) -> list[Any]:
        """Map user-visible args (backend arrays, scalars) to kernel args
        (raw ndarrays, scalars)."""
        out = []
        for a in args:
            if isinstance(a, np.ndarray):
                out.append(a)
            elif hasattr(a, "__pyacc_array__"):
                out.append(self.unwrap(a))
            else:
                out.append(a)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} kind={self.device_kind!r}>"
