"""Error taxonomy for the PyACC runtime.

The hierarchy mirrors the places a kernel can fail on its way from Python
source to execution:

* :class:`PyACCError` — root of everything raised by this package.
* :class:`BackendError` — backend registry / selection problems.
* :class:`TraceError` — the tracing JIT could not build an IR for a kernel.
  Its subclasses signal *recoverable* conditions that the compile driver
  uses to fall down the specialization ladder (symbolic trace →
  value-specialized trace → interpreter):

  - :class:`ConcretizationRequired` — a scalar argument was used in a way
    that needs a concrete Python value (e.g. as a loop bound or via
    ``__index__``/``__int__``).  Retraced with scalars baked in as
    constants.
  - :class:`TraceFallback` — the kernel is outside what the vectorizer can
    express (e.g. too many control-flow paths); executed by the scalar
    interpreter instead.

* :class:`KernelExecutionError` — the kernel IR was built but executing it
  failed (e.g. an out-of-bounds store on a taken path).
"""

from __future__ import annotations


class PyACCError(Exception):
    """Base class for all errors raised by the repro/PyACC package."""


class BackendError(PyACCError):
    """A backend could not be found, loaded, or used."""


class UnknownBackendError(BackendError):
    """The requested backend name is not registered."""

    def __init__(self, name: str, available: tuple[str, ...]):
        self.name = name
        self.available = available
        super().__init__(
            f"unknown backend {name!r}; available backends: {', '.join(available)}"
        )


class PreferencesError(PyACCError):
    """The preferences file is malformed or unwritable."""


class TraceError(PyACCError):
    """The tracing JIT failed to build an IR for a kernel."""


class ConcretizationRequired(TraceError):
    """A symbolic scalar needs a concrete value to continue tracing.

    Raised when kernel code calls ``int()``, ``__index__``, ``float()``,
    ``len()`` or iterates over a symbolic scalar.  The compile driver
    catches this and retraces with scalar arguments bound to their
    concrete runtime values (specializing the trace on them).
    """

    def __init__(self, what: str = "a symbolic scalar"):
        self.what = what
        super().__init__(
            f"tracing requires a concrete value for {what}; "
            "the kernel will be re-specialized on concrete scalar arguments"
        )


class TraceFallback(TraceError):
    """The kernel cannot be vectorized; fall back to the interpreter."""


class TooManyPathsError(TraceFallback):
    """Branch forking exceeded the configured path budget."""

    def __init__(self, limit: int):
        self.limit = limit
        super().__init__(
            f"kernel control flow produced more than {limit} distinct paths"
        )


class KernelVerificationError(PyACCError):
    """The kernel verifier found contract violations under ``error`` mode.

    Carries the full diagnostics tuple (see
    :class:`repro.ir.diagnostics.Diagnostic`) so callers can inspect the
    individual rule findings programmatically.
    """

    def __init__(self, kernel: str, diagnostics=()):
        self.kernel = kernel
        self.diagnostics = tuple(diagnostics)
        n_errors = sum(
            1 for d in self.diagnostics if getattr(d, "severity", "") == "error"
        )
        lines = [
            f"kernel {kernel!r} failed verification "
            f"({n_errors} error(s), {len(self.diagnostics)} finding(s) total)"
        ]
        lines.extend(f"  {d}" for d in self.diagnostics)
        super().__init__("\n".join(lines))


class TranslationValidationError(PyACCError):
    """The translation validator rejected an applied program rewrite.

    Raised under ``validate=error`` when a fusion/DSE/sinking rewrite
    the pass pipeline applied cannot be independently re-derived from
    the memory-effects summaries, or when a program-level analysis
    finds an error-severity hazard (V603).  Carries the structured
    diagnostics (see :class:`repro.ir.diagnostics.Diagnostic`).
    """

    def __init__(self, program: str, diagnostics=()):
        self.program = program
        self.diagnostics = tuple(diagnostics)
        lines = [
            f"program {program!r} failed translation validation "
            f"({len(self.diagnostics)} finding(s))"
        ]
        lines.extend(f"  {d}" for d in self.diagnostics)
        super().__init__("\n".join(lines))


class KernelExecutionError(PyACCError):
    """Executing a compiled kernel failed."""


class InvalidReduceOpError(KernelExecutionError, ValueError):
    """An unknown reduction op reached the API boundary.

    Subclasses :class:`ValueError` (the natural contract for a bad
    argument value) *and* :class:`KernelExecutionError` (what the
    backends historically raised for the same mistake), so both
    ``except`` styles keep working.
    """


class LaunchConfigError(PyACCError):
    """An invalid launch configuration (dims, block shape) was requested."""


class DeviceError(PyACCError):
    """A simulated-device operation failed (bad handle, wrong device...).

    Carries structured fields so runtime policy (retry, failover) and
    observability can act on *what* failed instead of parsing messages:

    - ``device_id`` — the device the operation ran on (``None`` when the
      failure is not device-specific);
    - ``operation`` — the seam that failed (``"to_device"``,
      ``"launch"``, ``"multidevice.chunk"``, ...);
    - ``transient`` — whether retrying the same operation can succeed
      (the retry policy only ever retries transient failures).
    """

    def __init__(
        self,
        message: str = "",
        *,
        device_id=None,
        operation=None,
        transient: bool = False,
    ):
        self.device_id = device_id
        self.operation = operation
        self.transient = transient
        if not message:
            where = operation or "device operation"
            dev = f" on device {device_id!r}" if device_id else ""
            message = f"{where} failed{dev}"
        super().__init__(message)


class TransientDeviceError(DeviceError):
    """A device failure that may succeed on retry (ECC blip, transfer
    timeout, allocator pressure).  The launch policy retries these with
    capped exponential backoff."""

    def __init__(self, message: str = "", *, device_id=None, operation=None):
        super().__init__(
            message, device_id=device_id, operation=operation, transient=True
        )


class PermanentDeviceError(DeviceError):
    """A device failure that will not go away (device fell off the bus).

    The launch policy responds by *failover*: the failed device is
    removed from the dispatch set and the plan re-executes on the next
    rung of the ladder (surviving devices → single device → threads →
    serial)."""

    def __init__(self, message: str = "", *, device_id=None, operation=None):
        super().__init__(
            message, device_id=device_id, operation=operation, transient=False
        )


class WorkerLostError(PermanentDeviceError):
    """A cluster worker process died or stopped responding.

    Losing a process is the cluster backend's permanent-failure shape:
    the supervisor removes the worker from the dispatch set, attempts a
    budgeted respawn, and rebalances the unprocessed shard rows over the
    survivors — the same failover motion
    :class:`~repro.backends.multidevice.MultiDeviceBackend` performs for
    a lost device.  Subclasses :class:`PermanentDeviceError` so the
    dispatch ladder and retry policy classify it without new plumbing.
    """


class LaunchTimeoutError(PyACCError):
    """An asynchronous launch exceeded its policy's wall-clock watchdog.

    Raised by :func:`repro.synchronize` when a ``sync=False`` handle does
    not complete within ``LaunchPolicy.watchdog`` seconds.  Carries the
    kernel label and plan repr so the hung launch is identifiable.
    """

    def __init__(self, kernel: str, plan_repr: str, timeout: float):
        self.kernel = kernel
        self.plan_repr = plan_repr
        self.timeout = timeout
        super().__init__(
            f"launch of kernel {kernel!r} did not complete within the "
            f"{timeout:g}s watchdog ({plan_repr})"
        )


class CheckpointError(PyACCError):
    """Checkpoint/restore misuse (restore with no snapshot, budget
    exhausted)."""


class GraphError(PyACCError):
    """Launch-graph misuse: nested captures, replaying an invalidated
    instantiation, or binding unknown scalar slots (see
    :mod:`repro.graph`)."""


class MemoryError_(DeviceError):
    """A simulated device ran out of its configured memory capacity."""
