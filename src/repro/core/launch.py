"""Launch-configuration math, transcribed from the paper's Figures 5-7.

JACC computes GPU launch shapes the same way on every vendor backend:

* 1-D: ``threads = min(N, max_block_dim_x)``, ``blocks = cld(N, threads)``
  (paper Fig. 6, CUDA; Fig. 7, oneAPI uses ``maxTotalGroupSize``).
* 2-D: a fixed 16x16 tile — ``numThreads = 16`` per axis, ``Mthreads =
  min(M, 16)`` etc. (Figs. 6-7).
* 3-D (JACC.jl upstream): an 8x8x8 tile by the same construction.

The CPU backend uses *coarse* decomposition instead: the leading axis is
split into one contiguous chunk per worker thread.  In Julia, arrays are
column-major so Base.Threads splits the trailing (column) axis; NumPy is
row-major, so we split the leading axis — same "contiguous chunks per
thread" property, mirrored layout (documented deviation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .exceptions import LaunchConfigError

__all__ = [
    "LaunchConfig",
    "gpu_launch_config",
    "cpu_chunks",
    "weighted_chunks",
    "DEFAULT_TILE_2D",
    "DEFAULT_TILE_3D",
]

#: Per-axis 2-D block edge used by every JACC GPU backend (paper Fig. 6).
DEFAULT_TILE_2D = 16
#: Per-axis 3-D block edge (JACC.jl upstream).
DEFAULT_TILE_3D = 8


@dataclass(frozen=True)
class LaunchConfig:
    """A GPU launch shape: threads-per-block and blocks, per axis."""

    threads: tuple[int, ...]
    blocks: tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.threads)

    @property
    def threads_per_block(self) -> int:
        return math.prod(self.threads)

    @property
    def n_blocks(self) -> int:
        return math.prod(self.blocks)

    @property
    def total_threads(self) -> int:
        return self.threads_per_block * self.n_blocks


def _cld(a: int, b: int) -> int:
    """Ceiling division — Julia's ``cld`` used throughout the paper."""
    return -(-a // b)


def gpu_launch_config(
    dims: Sequence[int],
    max_block_dim_x: int,
    *,
    tile_2d: int = DEFAULT_TILE_2D,
    tile_3d: int = DEFAULT_TILE_3D,
) -> LaunchConfig:
    """Compute the JACC launch shape for a 1-D/2-D/3-D domain.

    ``max_block_dim_x`` is the device's maximum block size along x
    (``CUDA.DEVICE_ATTRIBUTE_MAX_BLOCK_DIM_X`` / oneAPI
    ``maxTotalGroupSize`` in the paper's pseudocode).
    """
    dims = tuple(int(d) for d in dims)
    if any(d <= 0 for d in dims):
        raise LaunchConfigError(f"launch dims must be positive, got {dims}")
    if max_block_dim_x <= 0:
        raise LaunchConfigError(
            f"max_block_dim_x must be positive, got {max_block_dim_x}"
        )
    if len(dims) == 1:
        (n,) = dims
        threads = min(n, max_block_dim_x)
        return LaunchConfig(threads=(threads,), blocks=(_cld(n, threads),))
    if len(dims) == 2:
        m, n = dims
        mt = min(m, tile_2d)
        nt = min(n, tile_2d)
        return LaunchConfig(
            threads=(mt, nt), blocks=(_cld(m, mt), _cld(n, nt))
        )
    if len(dims) == 3:
        l, m, n = dims
        lt = min(l, tile_3d)
        mt = min(m, tile_3d)
        nt = min(n, tile_3d)
        return LaunchConfig(
            threads=(lt, mt, nt),
            blocks=(_cld(l, lt), _cld(m, mt), _cld(n, nt)),
        )
    raise LaunchConfigError(
        f"launch domain must be 1-D..3-D, got {len(dims)} dims"
    )


def cpu_chunks(dims: Sequence[int], n_workers: int) -> list[tuple[int, int]]:
    """Split the leading axis into ≤ ``n_workers`` contiguous chunks.

    Returns half-open ``(lo, hi)`` ranges covering ``0..dims[0]``.  The
    chunking is balanced (sizes differ by at most one), mirroring
    ``Threads.@threads``' static schedule.
    """
    dims = tuple(int(d) for d in dims)
    if any(d <= 0 for d in dims):
        raise LaunchConfigError(f"launch dims must be positive, got {dims}")
    if n_workers <= 0:
        raise LaunchConfigError(f"n_workers must be positive, got {n_workers}")
    n = dims[0]
    k = min(n_workers, n)
    base, extra = divmod(n, k)
    chunks = []
    lo = 0
    for w in range(k):
        hi = lo + base + (1 if w < extra else 0)
        chunks.append((lo, hi))
        lo = hi
    return chunks


def weighted_chunks(
    dims: Sequence[int], weights: Sequence[float]
) -> list[tuple[int, int]]:
    """Split the leading axis proportionally to ``weights``.

    The heterogeneous-node decomposition (paper §VII): each device
    receives a share of the iteration space proportional to its
    throughput, so all devices finish together under the bandwidth-bound
    model.  Returns one half-open ``(lo, hi)`` range per weight, in
    order, covering ``0..dims[0]``; a weight may receive an empty range
    when the axis is shorter than the device count.
    """
    dims = tuple(int(d) for d in dims)
    if any(d <= 0 for d in dims):
        raise LaunchConfigError(f"launch dims must be positive, got {dims}")
    weights = [float(w) for w in weights]
    if not weights:
        raise LaunchConfigError("weighted_chunks needs at least one weight")
    if any(w <= 0 for w in weights):
        raise LaunchConfigError(f"weights must be positive, got {weights}")
    n = dims[0]
    total = sum(weights)
    # Largest-remainder apportionment: exact cover, minimal rounding skew.
    raw = [n * w / total for w in weights]
    sizes = [int(r) for r in raw]
    remainder = n - sum(sizes)
    order = sorted(
        range(len(weights)), key=lambda k: raw[k] - sizes[k], reverse=True
    )
    for k in order[:remainder]:
        sizes[k] += 1
    chunks = []
    lo = 0
    for s in sizes:
        chunks.append((lo, lo + s))
        lo += s
    return chunks
