"""Backend preferences — the LocalPreferences.toml analogue.

JACC selects its backend with Julia's Preferences.jl, which persists the
choice in a ``LocalPreferences.toml`` next to the active project before
precompilation.  We reproduce the same mechanism:

* The preferences file is ``LocalPreferences.toml`` in the current working
  directory, overridable with the ``PYACC_PREFERENCES`` environment
  variable (a path).
* The backend preference lives under a ``[repro]`` table, key
  ``backend``.  The environment variable ``PYACC_BACKEND`` overrides the
  file (handy for CI matrices, like the paper's per-backend GitHub
  runners).
* :func:`resolve_backend_name` is consulted once at first use; the
  runtime default is ``"threads"`` — the same default JACC ships
  (Base.Threads on CPUs).

Reading uses the standard library ``tomllib``; writing emits the minimal
single-table document ourselves (no TOML writer in the stdlib).
"""

from __future__ import annotations

import os
import tomllib
from pathlib import Path
from typing import Optional

from .exceptions import PreferencesError

__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_EXECUTOR",
    "DEFAULT_GRAPH_MODE",
    "DEFAULT_PASSES_MODE",
    "DEFAULT_VALIDATE_MODE",
    "DEFAULT_VERIFY_MODE",
    "EXECUTOR_MODES",
    "GRAPH_MODES",
    "PASS_NAMES",
    "PASSES_PRESETS",
    "VALIDATE_MODES",
    "VERIFY_MODES",
    "preferences_path",
    "read_preferences",
    "write_preference",
    "resolve_backend_name",
    "resolve_executor_mode",
    "resolve_graph_mode",
    "resolve_passes_mode",
    "resolve_validate_mode",
    "resolve_verify_mode",
]

#: The paper's default backend is Base.Threads; ours is its analogue.
DEFAULT_BACKEND = "threads"

#: Enforcement modes of the kernel verifier (see repro.ir.verify).
VERIFY_MODES = ("off", "warn", "error")

#: Default verifier enforcement: report findings, never block a launch.
DEFAULT_VERIFY_MODE = "warn"

#: Enforcement modes of the translation validator (repro.ir.validate).
VALIDATE_MODES = ("off", "warn", "error")

#: Default validator enforcement: a rewrite the validator cannot confirm
#: is undone (the program degrades to unoptimized replay) with a
#: warning; ``error`` raises instead, ``off`` skips the re-derivation.
DEFAULT_VALIDATE_MODE = "warn"

#: Executor strategies for traced kernels (see repro.ir.compile):
#: ``native`` compiles the trace to a C shared object (declining to
#: codegen when ineligible), ``codegen`` lowers the trace to
#: straight-line NumPy source once, ``vector`` walks the IR per launch,
#: ``interpreter`` skips tracing.
EXECUTOR_MODES = ("native", "codegen", "vector", "interpreter")

#: Default executor: generated code (the fastest steady-state path).
DEFAULT_EXECUTOR = "codegen"

#: Launch-graph capture modes (see repro.graph): ``on`` lets the
#: iterative apps capture + replay their launch sequences, ``off``
#: dispatches every construct through the full staged pipeline.
GRAPH_MODES = ("on", "off")

#: Optimization passes the graph pipeline can run at instantiate time
#: (see repro.ir.program), in pipeline order.
PASS_NAMES = ("fuse", "dse", "sink", "schedule")

#: Preset values for the passes knob besides explicit comma lists.
PASSES_PRESETS = ("all", "none", "peephole")

#: Default: graphs enabled (the fastest steady-state path; the staged
#: pipeline stays bit-identical, so opting out is a pure perf knob).
DEFAULT_GRAPH_MODE = "on"

#: Default: the full pass pipeline (bit-identical by construction; every
#: unsafe program declines per pass and degrades to unoptimized replay).
DEFAULT_PASSES_MODE = "all"

_ENV_FILE = "PYACC_PREFERENCES"
_ENV_BACKEND = "PYACC_BACKEND"
_ENV_VERIFY = "PYACC_VERIFY"
_ENV_EXECUTOR = "PYACC_EXECUTOR"
_ENV_GRAPH = "PYACC_GRAPH"
_ENV_PASSES = "PYACC_PASSES"
_ENV_VALIDATE = "PYACC_VALIDATE"
_TABLE = "repro"
_FILENAME = "LocalPreferences.toml"


def preferences_path() -> Path:
    """Location of the preferences file for this process."""
    override = os.environ.get(_ENV_FILE)
    if override:
        return Path(override)
    return Path.cwd() / _FILENAME


def read_preferences(path: Optional[Path] = None) -> dict:
    """Read the ``[repro]`` preferences table; missing file → ``{}``."""
    p = path or preferences_path()
    if not p.exists():
        return {}
    try:
        with open(p, "rb") as fh:
            doc = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise PreferencesError(f"cannot read preferences file {p}: {exc}") from exc
    table = doc.get(_TABLE, {})
    if not isinstance(table, dict):
        raise PreferencesError(
            f"preferences file {p} has a non-table [{_TABLE}] entry"
        )
    return table


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise PreferencesError(
        f"unsupported preference value type {type(value).__name__}"
    )


def write_preference(key: str, value, path: Optional[Path] = None) -> Path:
    """Persist one preference under ``[repro]``, keeping existing keys.

    Other tables in an existing file are preserved verbatim is *not*
    attempted — the file is owned by this package, matching how
    Preferences.jl rewrites LocalPreferences.toml.
    """
    p = path or preferences_path()
    table = {}
    if p.exists():
        table = read_preferences(p)
    table[key] = value
    lines = [f"[{_TABLE}]"]
    for k in sorted(table):
        lines.append(f"{k} = {_format_value(table[k])}")
    try:
        p.write_text("\n".join(lines) + "\n", encoding="utf-8")
    except OSError as exc:
        raise PreferencesError(f"cannot write preferences file {p}: {exc}") from exc
    return p


def resolve_backend_name() -> str:
    """Decide the backend name: env var > preferences file > default."""
    env = os.environ.get(_ENV_BACKEND)
    if env:
        return env
    prefs = read_preferences()
    backend = prefs.get("backend", DEFAULT_BACKEND)
    if not isinstance(backend, str):
        raise PreferencesError(
            f"preference 'backend' must be a string, got {backend!r}"
        )
    return backend


def resolve_verify_mode() -> str:
    """Decide the verifier enforcement mode: env var > file > default.

    The environment variable is ``PYACC_VERIFY``; the preferences key is
    ``verify`` under ``[repro]``.  Valid values are ``off`` (skip the
    analysis entirely), ``warn`` (emit ``KernelVerificationWarning``,
    the default) and ``error`` (raise ``KernelVerificationError`` on
    error-severity findings).
    """
    mode = os.environ.get(_ENV_VERIFY)
    if not mode:
        prefs = read_preferences()
        mode = prefs.get("verify", DEFAULT_VERIFY_MODE)
    if mode not in VERIFY_MODES:
        raise PreferencesError(
            f"verify mode must be one of {VERIFY_MODES}, got {mode!r}"
        )
    return mode


def resolve_validate_mode() -> str:
    """Decide the translation-validator mode: env var > file > default.

    The environment variable is ``PYACC_VALIDATE``; the preferences key
    is ``validate`` under ``[repro]``.  Valid values are ``off`` (trust
    the pass pipeline, skip re-derivation), ``warn`` (undo unconfirmed
    rewrites and warn, the default) and ``error`` (raise
    ``TranslationValidationError`` on any unconfirmed rewrite or
    error-severity program diagnostic).
    """
    mode = os.environ.get(_ENV_VALIDATE)
    if not mode:
        prefs = read_preferences()
        mode = prefs.get("validate", DEFAULT_VALIDATE_MODE)
    if mode not in VALIDATE_MODES:
        raise PreferencesError(
            f"validate mode must be one of {VALIDATE_MODES}, got {mode!r}"
        )
    return mode


def resolve_executor_mode() -> str:
    """Decide the kernel executor: env var > file > default.

    The environment variable is ``PYACC_EXECUTOR``; the preferences key
    is ``executor`` under ``[repro]``.  Valid values are ``native``
    (compile each trace to a C shared object via the system compiler,
    declining to codegen when ineligible), ``codegen`` (lower each
    trace to generated NumPy source, the default), ``vector`` (walk the
    IR per launch) and ``interpreter`` (scalar reference execution, no
    tracing) — the ablation axis for the executor benchmarks.
    """
    mode = os.environ.get(_ENV_EXECUTOR)
    if not mode:
        prefs = read_preferences()
        mode = prefs.get("executor", DEFAULT_EXECUTOR)
    if mode not in EXECUTOR_MODES:
        raise PreferencesError(
            f"executor mode must be one of {EXECUTOR_MODES}, got {mode!r}"
        )
    return mode


def resolve_graph_mode() -> str:
    """Decide the launch-graph mode: env var > file > default.

    The environment variable is ``PYACC_GRAPH``; the preferences key is
    ``graph`` under ``[repro]``.  Valid values are ``on`` (iterative
    apps capture their launch sequences once and replay pre-staged
    graphs, the default) and ``off`` (every construct goes through the
    full staged dispatch pipeline — the differential-testing baseline).
    """
    mode = os.environ.get(_ENV_GRAPH)
    if not mode:
        prefs = read_preferences()
        mode = prefs.get("graph", DEFAULT_GRAPH_MODE)
    if mode not in GRAPH_MODES:
        raise PreferencesError(
            f"graph mode must be one of {GRAPH_MODES}, got {mode!r}"
        )
    return mode


def resolve_passes_mode() -> str:
    """Decide the graph pass-pipeline mode: env var > file > default.

    The environment variable is ``PYACC_PASSES``; the preferences key is
    ``passes`` under ``[repro]``.  Valid values:

    * ``all`` (default) — the full program-level pipeline (global fusion,
      dead-store elimination, allocation sinking, perfmodel scheduler);
    * ``peephole`` — PR-5-style adjacent-pair fusion only (the
      differential baseline for the program passes);
    * ``none`` — no optimization at instantiate time;
    * a comma-separated subset of pass names from :data:`PASS_NAMES`,
      e.g. ``fuse,dse``.
    """
    mode = os.environ.get(_ENV_PASSES)
    if not mode:
        prefs = read_preferences()
        mode = prefs.get("passes", DEFAULT_PASSES_MODE)
    if mode in PASSES_PRESETS:
        return mode
    parts = tuple(p.strip() for p in mode.split(",") if p.strip())
    if parts and all(p in PASS_NAMES for p in parts):
        return ",".join(parts)
    raise PreferencesError(
        f"passes mode must be one of {PASSES_PRESETS} or a comma-separated "
        f"subset of {PASS_NAMES}, got {mode!r}"
    )
