"""Core of the portable programming model: API, array, backends contract,
execution contexts, launch plans, preferences and launch-configuration
math."""

from .api import (
    active_backend,
    launch,
    parallel_for,
    parallel_reduce,
    reset_backend,
    set_backend,
    synchronize,
    use_backend,
)
from .array import array, is_backend_array, ones, to_host, zeros
from .backend import Accounting, Backend, normalize_dims
from .context import ExecutionContext, current_context
from .launch import LaunchConfig, cpu_chunks, gpu_launch_config
from .plan import LaunchHandle, LaunchPlan, LaunchSchedule

__all__ = [
    "Accounting",
    "Backend",
    "ExecutionContext",
    "LaunchConfig",
    "LaunchHandle",
    "LaunchPlan",
    "LaunchSchedule",
    "active_backend",
    "array",
    "cpu_chunks",
    "current_context",
    "gpu_launch_config",
    "is_backend_array",
    "launch",
    "normalize_dims",
    "ones",
    "parallel_for",
    "parallel_reduce",
    "reset_backend",
    "set_backend",
    "synchronize",
    "to_host",
    "use_backend",
    "zeros",
]
