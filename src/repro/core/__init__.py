"""Core of the portable programming model: API, array, backends contract,
preferences and launch-configuration math."""

from .api import (
    active_backend,
    parallel_for,
    parallel_reduce,
    reset_backend,
    set_backend,
    synchronize,
)
from .array import array, is_backend_array, ones, to_host, zeros
from .backend import Accounting, Backend, normalize_dims
from .launch import LaunchConfig, cpu_chunks, gpu_launch_config

__all__ = [
    "Accounting",
    "Backend",
    "LaunchConfig",
    "active_backend",
    "array",
    "cpu_chunks",
    "gpu_launch_config",
    "is_backend_array",
    "normalize_dims",
    "ones",
    "parallel_for",
    "parallel_reduce",
    "reset_backend",
    "set_backend",
    "synchronize",
    "to_host",
    "zeros",
]
