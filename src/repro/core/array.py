"""The unified array constructor — ``JACC.Array`` in the paper.

``repro.array(x)`` materializes ``x`` on whatever backend is active:

* CPU backends (serial, threads): a host ndarray — the paper notes that
  "when using Base.Threads as the back end, using JACC.Array is not
  necessary", and indeed plain NumPy arrays are accepted everywhere.
* Simulated GPU backends: a :class:`~repro.backends.gpusim.memory.DeviceArray`
  living in the device's (simulated) memory space; the H2D transfer is
  charged to the device clock.

``to_host`` is the inverse.  Both are thin dispatchers; the behaviour
lives in each backend's memory component.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..ir import writes
from . import api

__all__ = ["array", "zeros", "ones", "to_host", "is_backend_array"]


def array(data: Any, dtype=None) -> Any:
    """Materialize ``data`` on the active backend (``JACC.Array``).

    ``data`` is anything :func:`numpy.asarray` accepts.  The result is
    the backend's native array handle and is what kernels should receive.
    """
    host = np.asarray(data, dtype=dtype)
    return api.active_backend().array(host)


def zeros(shape, dtype=np.float64) -> Any:
    """``JACC.zeros``: a zero-filled backend array."""
    return api.active_backend().array(np.zeros(shape, dtype=dtype))


def ones(shape, dtype=np.float64) -> Any:
    """``JACC.ones``: a one-filled backend array."""
    return api.active_backend().array(np.ones(shape, dtype=dtype))


def to_host(arr: Any) -> np.ndarray:
    """Copy a backend array back to host memory (device→host transfer on
    GPU backends, cheap pass-through on CPU backends)."""
    backend = api.active_backend()
    # A host readback is an external observation: fire access guards so
    # graphs holding optimistic state for this storage (sunk buffers,
    # eliminated stores — see repro.ir.program) materialize it first.
    try:
        raw = backend.unwrap(arr)
    except Exception:
        raw = None
    if raw is not None:
        writes.note_access((id(raw),))
    return backend.to_host(arr)


def is_backend_array(obj: Any) -> bool:
    """True for device-array handles produced by :func:`array` on
    non-CPU backends."""
    return hasattr(obj, "__pyacc_array__")
