"""Context-local execution state: backend, kernel cache, hooks, queue.

The reproduction originally kept the active backend in a module-global —
faithful to the paper's single-tenant workflow, but hostile to concurrent
use: two threads (or asyncio tasks) could not hold different backends.
This module replaces the global with an :class:`ExecutionContext` held in
a :mod:`contextvars` variable:

* the **process-default context** backs ``set_backend``/``active_backend``
  exactly as before (one shared backend, resolved lazily from the
  Preferences mechanism), so single-tenant code is unchanged;
* :func:`use_backend` installs a *scoped* context visible only to the
  current thread/task — concurrent scopes are fully isolated, which is
  what multi-tenant serving and the multi-device work need.

Each context also owns:

* an optional **kernel cache** (``kernel_cache``) so compiles can be
  scoped per-context instead of process-global;
* **dispatch-event hooks** (:meth:`ExecutionContext.on_launch` /
  :meth:`ExecutionContext.on_complete`) that fire around every construct
  with the :class:`~repro.core.plan.LaunchPlan`, so observers (the bench
  harness, future tracing layers) subscribe instead of reaching into
  backend accounting fields;
* an **asynchronous launch queue** — an in-order stream (one worker, like
  a CUDA stream) that ``repro.launch(..., sync=False)`` submits to and
  ``repro.synchronize()`` drains;
* a **scratch-buffer arena** (:class:`repro.ir.arena.ScratchArena`) that
  the codegen executor draws ``out=`` temporaries from — per-context, so
  concurrent tenants never exchange buffers.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Union

from ..ir.arena import ScratchArena
from .exceptions import BackendError, LaunchTimeoutError

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..faults import FaultEvent, FaultPlan, LaunchPolicy
    from ..ir.compile import KernelCache
    from .backend import Backend
    from .plan import LaunchHandle, LaunchPlan

__all__ = [
    "ExecutionContext",
    "current_context",
    "use_backend",
]


def _instantiate(name: str) -> "Backend":
    # Imported here (not at module top) so the registry's lazy loading —
    # the weak-dependency analogue — actually stays lazy.
    from ..backends.registry import create_backend

    return create_backend(name)


class ExecutionContext:
    """One tenant's execution state: backend + cache + hooks + queue."""

    def __init__(
        self,
        backend: Optional["Backend"] = None,
        *,
        kernel_cache: Optional["KernelCache"] = None,
    ):
        self._backend = backend
        #: Per-context compiled-kernel cache; ``None`` uses the
        #: process-global cache in :mod:`repro.ir.compile`.
        self.kernel_cache = kernel_cache
        #: Per-context scratch-buffer pool for generated kernels (see
        #: :mod:`repro.ir.arena`); scoped like the kernel cache so
        #: concurrent tenants never share buffers.
        self.arena = ScratchArena()
        self._on_launch: list[Callable[["LaunchPlan"], None]] = []
        self._on_complete: list[Callable[["LaunchPlan"], None]] = []
        self._lock = threading.Lock()
        self._pending: deque["LaunchHandle"] = deque()
        self._executor: Optional[ThreadPoolExecutor] = None
        #: Fault-injection plan (see :mod:`repro.faults`).  ``None`` until
        #: first resolution; the sentinel distinguishes "not yet resolved
        #: from env/prefs" from "resolved to no injection".
        self._fault_plan: Optional["FaultPlan"] = None
        self._fault_plan_resolved = False
        self._fault_lock = threading.Lock()
        #: Fault-handling contract applied to launches in this context.
        self._launch_policy: Optional["LaunchPolicy"] = None
        #: Fault-handling activity observed in this context (retries,
        #: failovers, watchdog timeouts, checkpoint restores).
        self.fault_events: list["FaultEvent"] = []
        #: The active :class:`repro.graph.capture.GraphCapture`, or
        #: ``None``.  When set, ``_dispatch`` records every staged plan
        #: it executes (relaxed stream capture — see :mod:`repro.graph`).
        self.graph_capture = None

    # -- backend resolution -------------------------------------------------
    def backend(self) -> "Backend":
        """This context's backend, resolving preferences on first use."""
        if self._backend is None:
            from .preferences import resolve_backend_name

            self._backend = _instantiate(resolve_backend_name())
        return self._backend

    def set_backend(self, backend: Union[str, "Backend"]) -> "Backend":
        """Install a backend (by registry name or instance) in this
        context only."""
        from ..backends.registry import resolve_backend

        self._backend = resolve_backend(backend)
        return self._backend

    def reset(self) -> None:
        """Drop this context's backend; the next use re-resolves
        preferences.  Other contexts are unaffected."""
        self._backend = None

    # -- fault injection + launch policy --------------------------------------
    @property
    def fault_plan(self) -> Optional["FaultPlan"]:
        """This context's fault-injection plan (``None`` = no injection).

        Resolved lazily on first access from ``PYACC_FAULTS`` / the
        ``faults`` preferences key; :meth:`set_fault_plan` overrides.
        """
        with self._fault_lock:
            if not self._fault_plan_resolved:
                from ..faults import resolve_fault_plan

                self._fault_plan = resolve_fault_plan()
                self._fault_plan_resolved = True
                self.arena._fault_plan = self._fault_plan
            return self._fault_plan

    def set_fault_plan(self, plan) -> None:
        """Install (or clear, with ``None``) this context's fault plan."""
        with self._fault_lock:
            self._fault_plan = plan
            self._fault_plan_resolved = True
            # The arena keeps its own reference: frame opens happen on
            # worker threads where contextvars don't resolve this context.
            self.arena._fault_plan = plan

    @property
    def launch_policy(self) -> "LaunchPolicy":
        """The fault-handling contract applied to this context's launches."""
        if self._launch_policy is None:
            from ..faults import DEFAULT_POLICY

            return DEFAULT_POLICY
        return self._launch_policy

    @launch_policy.setter
    def launch_policy(self, policy: Optional["LaunchPolicy"]) -> None:
        self._launch_policy = policy

    def fault_stats(self) -> dict:
        """Summary of fault-handling activity seen by this context."""
        events = list(self.fault_events)
        by_action: dict = {}
        for ev in events:
            by_action[ev.action] = by_action.get(ev.action, 0) + 1
        plan = self._fault_plan
        return {
            "events": len(events),
            "by_action": by_action,
            "plan": plan.stats() if plan is not None else None,
        }

    # -- launch-graph capture -------------------------------------------------
    def capture(self) -> "Any":
        """A :class:`repro.graph.capture.GraphCapture` scoped to this
        context: ``with ctx.capture() as cap:`` records every construct
        dispatched in the block (which still executes eagerly) for
        instantiation and replay — see :mod:`repro.graph`."""
        from ..graph.capture import GraphCapture

        return GraphCapture(self)

    # -- dispatch-event hooks ------------------------------------------------
    def on_launch(
        self, callback: Callable[["LaunchPlan"], None]
    ) -> Callable[[], None]:
        """Subscribe to plan executions starting in this context.

        ``callback(plan)`` fires after the plan is fully staged (backend,
        kernel and schedule attached, ``sim_time_before`` recorded) and
        before the backend executes it.  Returns an unsubscribe callable.
        """
        self._on_launch.append(callback)
        return lambda: self._discard(self._on_launch, callback)

    def on_complete(
        self, callback: Callable[["LaunchPlan"], None]
    ) -> Callable[[], None]:
        """Subscribe to plan completions in this context.

        ``callback(plan)`` fires after the backend finished the plan, with
        ``plan.result`` and ``plan.sim_time_after`` populated.  Returns an
        unsubscribe callable.
        """
        self._on_complete.append(callback)
        return lambda: self._discard(self._on_complete, callback)

    @staticmethod
    def _discard(hooks: list, callback: Callable) -> None:
        try:
            hooks.remove(callback)
        except ValueError:
            pass

    def fire_launch(self, plan: "LaunchPlan") -> None:
        for cb in list(self._on_launch):
            cb(plan)

    def fire_complete(self, plan: "LaunchPlan") -> None:
        for cb in list(self._on_complete):
            cb(plan)

    # -- asynchronous launch queue --------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                # One worker = an in-order stream: async launches overlap
                # with the submitting thread but execute in submission
                # order relative to each other, so dependent kernels stay
                # correct without explicit events (CUDA-stream semantics).
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="pyacc-launch"
                )
            return self._executor

    def submit(self, fn: Callable[[], Any]) -> Future:
        """Submit work to this context's launch stream."""
        return self._ensure_executor().submit(fn)

    def enqueue(self, handle: "LaunchHandle") -> None:
        """Track an in-flight asynchronous launch for :meth:`drain`."""
        with self._lock:
            self._pending.append(handle)

    @property
    def pending_launches(self) -> int:
        """Number of asynchronous launches not yet waited on."""
        with self._lock:
            return len(self._pending)

    def pending_handles(self) -> list:
        """Snapshot of in-flight asynchronous launches (not yet done).

        Used by the V601 cross-launch race check in
        :func:`repro.core.api.launch`: a new ``sync=False`` launch whose
        reads/writes overlap a still-pending handle's writes is a
        RAW/WAW race against the launch stream.
        """
        with self._lock:
            return [h for h in self._pending if not h.done()]

    def drain(self) -> None:
        """Wait for every queued asynchronous launch.

        All pending launches are waited even if one fails; the first
        error is re-raised afterwards (matching how a device ``sync``
        surfaces asynchronous kernel failures).  Errors carry the
        failing plan's label (``plan_label``/``plan_repr``).  When the
        launch policy sets a ``watchdog``, a handle that does not finish
        within that many wall-clock seconds raises
        :class:`~repro.core.exceptions.LaunchTimeoutError`.
        """
        import concurrent.futures as _futures

        watchdog = self.launch_policy.watchdog
        first_error: Optional[BaseException] = None
        while True:
            with self._lock:
                if not self._pending:
                    break
                handle = self._pending.popleft()
            try:
                handle.wait(watchdog)
            except _futures.TimeoutError:
                plan = handle.plan
                timeout_exc = LaunchTimeoutError(
                    getattr(plan.fn, "__name__", repr(plan.fn)),
                    repr(plan),
                    watchdog,
                )
                from ..faults import FaultEvent, record_event

                record_event(
                    FaultEvent(
                        site="queue",
                        kind="timeout",
                        action="watchdog",
                        kernel=getattr(plan.fn, "__name__", None),
                        detail=f"exceeded {watchdog:g}s watchdog",
                    ),
                    plan,
                )
                if first_error is None:
                    first_error = timeout_exc
            except BaseException as exc:  # re-raised after the drain
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def close(self) -> None:
        """Drain the queue and shut the launch stream down."""
        self.drain()
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


#: The process-default context: what ``set_backend``/``active_backend``
#: operate on outside any ``use_backend`` scope.  Shared across threads,
#: matching the old module-global behaviour.
_GLOBAL_CONTEXT = ExecutionContext()

_CURRENT: ContextVar[Optional[ExecutionContext]] = ContextVar(
    "pyacc_execution_context", default=None
)


def current_context() -> ExecutionContext:
    """The context governing dispatch for the calling thread/task."""
    return _CURRENT.get() or _GLOBAL_CONTEXT


@contextmanager
def use_backend(
    backend: Union[str, "Backend"],
    *,
    kernel_cache: Optional["KernelCache"] = None,
) -> Iterator[ExecutionContext]:
    """Run the enclosed block under a private :class:`ExecutionContext`.

    ``backend`` is a registry name or a :class:`Backend` instance.  The
    scope is context-local (:mod:`contextvars`): concurrent threads and
    asyncio tasks each see only their own scope, never each other's.
    Pass ``kernel_cache=KernelCache()`` to also scope compiles to this
    context instead of the process-global trace cache.

    On exit the scope's asynchronous launch queue is drained (no launch
    escapes its context) and the previous context is restored.
    """
    if backend is None:
        raise BackendError("use_backend requires a backend name or instance")
    ctx = ExecutionContext(kernel_cache=kernel_cache)
    ctx.set_backend(backend)
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
        ctx.close()
