"""Reified kernel launches: :class:`LaunchPlan` and friends.

The portable front end no longer funnels every construct through a
monolithic resolve→compile→run call chain.  Instead each construct is
reified as a :class:`LaunchPlan` — a first-class value object that moves
through four explicit stages (see :mod:`repro.core.api`):

1. **resolve** — bind the backend and map user-visible arguments to
   kernel arguments (``plan.backend``, ``plan.resolved_args``);
2. **compile** — attach the :class:`~repro.ir.compile.CompiledKernel`
   (``plan.kernel``), using the execution context's kernel cache;
3. **schedule** — record the launch-shape/chunking decision as a
   :class:`LaunchSchedule` (``plan.schedule``) so backends consume a
   decision instead of recomputing one;
4. **execute** — the backend consumes the plan through the narrowed
   :meth:`repro.core.backend.Backend.execute` entry point.

Reifying the launch is what the OpenACC-era JACC runtime does to enable
kernel-level scheduling (Matsumura et al.): once a launch is data, it can
be queued, observed, split, or fused.  :class:`LaunchHandle` is the
user-facing half — the return value of ``repro.launch(..., sync=False)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..ir.vectorizer import IndexDomain
from .launch import LaunchConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from concurrent.futures import Future

    from ..faults import FaultEvent, LaunchPolicy
    from ..ir.arena import ScratchArena
    from ..ir.compile import CompiledKernel
    from .backend import Backend

__all__ = ["LaunchPlan", "LaunchSchedule", "LaunchHandle", "label_exception"]


@dataclass(frozen=True)
class LaunchSchedule:
    """The recorded launch-shape decision for one plan.

    Produced by :meth:`repro.core.backend.Backend.schedule` during the
    schedule stage and consumed by ``execute``:

    * ``domains`` — the :class:`IndexDomain` chunks the kernel runs over
      (one full-domain entry for serial/GPU backends; one chunk per
      worker/device for the threads and multi-device backends);
    * ``inline`` — run in the calling thread instead of a worker pool
      (the threads backend's small-domain / interpreter-fallback path);
    * ``launch_config`` — the GPU thread/block shape derived from the
      paper's Figs. 6-7 formulas, when the backend owns a device;
    * ``halo`` — the cluster backend's exchange schedule
      (:class:`repro.backends.cluster.HaloSchedule`): which boundary
      rows each shard reads from rows it does not own, derived from the
      plan's memory-effects summary.  Computed once at schedule time and
      replayed with the plan (graph replays rebind scalars only);
      ``None`` for unsharded schedules and every other backend.
    """

    domains: tuple[IndexDomain, ...]
    inline: bool = True
    launch_config: Optional[LaunchConfig] = None
    halo: Optional[Any] = None

    @property
    def n_chunks(self) -> int:
        return len(self.domains)


@dataclass
class LaunchPlan:
    """One reified construct dispatch.

    Immutable inputs (``construct``/``dims``/``fn``/``args``/``op``) are
    set at creation; each pipeline stage fills in its own fields.  A plan
    is single-use: it describes exactly one launch, executed exactly once.
    """

    #: ``"for"`` or ``"reduce"``.
    construct: str
    #: Normalized launch domain, 1-D..3-D.
    dims: tuple[int, ...]
    #: The user's scalar kernel.
    fn: Callable
    #: User-visible arguments, as passed to the construct.
    args: tuple
    #: Reduction fold (reduce plans only).
    op: str = "add"

    # -- filled by the resolve stage --------------------------------------
    backend: Optional["Backend"] = None
    resolved_args: Optional[list] = None
    #: The fault-handling contract for this launch (retry/failover/
    #: watchdog); resolved from the execution context.  ``None`` means
    #: the default policy.
    policy: Optional["LaunchPolicy"] = None
    #: The execution context's scratch-buffer arena; backends hand it to
    #: ``CompiledKernel.run_for``/``run_reduce`` so generated kernels
    #: draw ``out=`` temporaries from a per-context pool.  The native
    #: rung leases its reduce value buffer from the same arena and hands
    #: the raw buffer pointer to the compiled C loop.
    arena: Optional["ScratchArena"] = None

    # -- filled by the compile stage ---------------------------------------
    kernel: Optional["CompiledKernel"] = None
    #: Verifier findings for this call signature (empty when the verify
    #: mode is ``off`` or the kernel is clean).
    diagnostics: tuple = ()

    # -- filled by the schedule stage ----------------------------------------
    schedule: Optional[LaunchSchedule] = None
    #: A schedule pinned by the graph pass pipeline's perfmodel-driven
    #: scheduler (repro.ir.program).  Backends that support pinning
    #: (threads) return it verbatim from ``schedule()`` so recompiles and
    #: replay re-scheduling cannot silently discard the pass's decision.
    schedule_pin: Optional[LaunchSchedule] = None

    # -- filled by the execute stage (observability) ---------------------------
    #: Backend modeled time immediately before/after execution; the
    #: dispatch-event hooks read these instead of backend accounting.
    sim_time_before: Optional[float] = None
    sim_time_after: Optional[float] = None
    #: The reduce value (``None`` for for-plans).
    result: Any = None
    #: Fault-handling activity observed while executing this plan
    #: (retries, failovers, watchdog timeouts) — see
    #: :class:`repro.faults.FaultEvent`.
    fault_events: list = field(default_factory=list)
    #: Storage ids this plan's kernel stores to, computed lazily by the
    #: execute stage for write-version tracking (repro.ir.writes) and
    #: cached here — graph replays reuse the plan, and array identities
    #: never change across replays (only scalar slots rebind).
    written_ids: Optional[tuple] = None
    #: Storage ids this plan's kernel loads from, computed alongside
    #: ``written_ids`` — feeds the pre-execution access notification
    #: (guards for sunk/DSE-optimized graph state) and the program IR's
    #: def-use edges.
    read_ids: Optional[tuple] = None
    #: Memory-effects summary (:class:`repro.ir.effects.EffectsSummary`)
    #: computed lazily by :func:`repro.ir.effects.plan_effects` — affine
    #: read/write regions per array, the foundation for the translation
    #: validator and the cross-launch hazard diagnostics (V6xx).
    effects: Any = None

    @property
    def is_reduce(self) -> bool:
        return self.construct == "reduce"

    @property
    def label(self) -> str:
        """Human-readable identity of this launch (kernel + shape)."""
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"{name}[{self.construct} dims={self.dims}]"

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def full_domain(self) -> IndexDomain:
        """The whole launch domain as one :class:`IndexDomain`."""
        return IndexDomain.full(self.dims)

    @property
    def sim_time_elapsed(self) -> float:
        """Modeled seconds this plan's execution spanned (0.0 until run)."""
        if self.sim_time_before is None or self.sim_time_after is None:
            return 0.0
        return self.sim_time_after - self.sim_time_before

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stage = (
            "executed"
            if self.sim_time_after is not None
            else "scheduled"
            if self.schedule is not None
            else "compiled"
            if self.kernel is not None
            else "resolved"
            if self.backend is not None
            else "new"
        )
        return (
            f"<LaunchPlan {self.construct} dims={self.dims} "
            f"fn={getattr(self.fn, '__name__', self.fn)!r} stage={stage}>"
        )


def label_exception(exc: BaseException, plan: LaunchPlan) -> BaseException:
    """Attach a plan's identity to an exception escaping its launch.

    Asynchronous failures surface at ``synchronize()``, far from the
    ``launch`` call that queued them — without a label the traceback
    points at the drain loop, not the kernel.  Sets ``plan_label`` /
    ``plan_repr`` attributes (stable, testable) and adds a traceback
    note on Python 3.11+.  Labels only once: a failover re-raise keeps
    the original attribution.
    """
    if getattr(exc, "plan_label", None) is None:
        try:
            exc.plan_label = plan.label
            exc.plan_repr = repr(plan)
        except AttributeError:  # exceptions with __slots__: skip labeling
            return exc
        add_note = getattr(exc, "add_note", None)
        if add_note is not None:  # Python 3.11+
            add_note(f"while executing {plan.label} ({plan!r})")
    return exc


class LaunchHandle:
    """Handle to a launched construct (``repro.launch``).

    Synchronous launches return an already-completed handle; asynchronous
    launches (``sync=False``) return a live one.  ``wait()`` blocks until
    the launch finishes (re-raising any kernel error); ``result()`` waits
    and returns the reduce value (``None`` for for-kernels).
    """

    __slots__ = ("plan", "_future")

    def __init__(self, plan: LaunchPlan, future: Optional["Future"] = None):
        self.plan = plan
        self._future = future

    @property
    def label(self) -> str:
        """The underlying plan's human-readable identity."""
        return self.plan.label

    @property
    def fault_events(self) -> list:
        """Fault-handling activity recorded for this launch."""
        return self.plan.fault_events

    def done(self) -> bool:
        """True once the launch has completed (always true for sync)."""
        return self._future is None or self._future.done()

    def wait(self, timeout: Optional[float] = None) -> "LaunchHandle":
        """Block until the launch completes; re-raises kernel errors.

        Errors from the queued execution carry the plan label
        (``plan_label``/``plan_repr`` attributes, see
        :func:`label_exception`).
        """
        if self._future is not None:
            try:
                self._future.result(timeout)
            except BaseException as exc:
                raise label_exception(exc, self.plan)
        return self

    def result(self, timeout: Optional[float] = None) -> Any:
        """Wait, then return the reduce value (``None`` for a for-plan)."""
        self.wait(timeout)
        return self.plan.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"<LaunchHandle {self.plan.construct} dims={self.plan.dims} {state}>"
