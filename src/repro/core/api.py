"""The portable front end: ``parallel_for``, ``parallel_reduce``, ``launch``.

The paper's two constructs (§III) remain the whole user-facing compute
surface, and both remain **synchronous** — when they return, the
computation has completed on the backend (paper §IV, last paragraph).
Underneath, every construct is now a staged pipeline over a reified
:class:`~repro.core.plan.LaunchPlan`:

``resolve`` (bind backend + args from the current
:class:`~repro.core.context.ExecutionContext`) → ``compile`` (the
specialization ladder, against the context's kernel cache) → ``schedule``
(record the launch-shape/chunking decision on the plan) → ``execute``
(the backend consumes the plan through ``Backend.execute``).

:func:`launch` exposes the plan machinery directly and adds the
asynchronous path: ``launch(dims, f, *args, sync=False)`` enqueues the
plan on the context's in-order launch stream and returns a
:class:`~repro.core.plan.LaunchHandle`; :func:`synchronize` drains the
stream.  The default constructs never queue — the paper's synchronous
guarantee is preserved bit-for-bit.

Backend selection follows the paper's Preferences mechanism (see
:mod:`repro.core.preferences`) on the process-default context;
:func:`~repro.core.context.use_backend` scopes a different backend to the
current thread/task only.
"""

from __future__ import annotations

from typing import Any, Callable, Union

import numpy as np

from ..ir import writes
from ..ir.compile import compile_kernel
from ..ir.verify import active_verify_mode, verify_launch
from .backend import Backend, normalize_dims
from .context import ExecutionContext, current_context, use_backend
from .exceptions import BackendError, InvalidReduceOpError
from .plan import LaunchHandle, LaunchPlan
from .preferences import write_preference

__all__ = [
    "parallel_for",
    "parallel_reduce",
    "launch",
    "active_backend",
    "set_backend",
    "reset_backend",
    "synchronize",
    "use_backend",
    "REDUCE_OPS",
]

#: The reductions the portable front end accepts (paper: ``add`` only;
#: ``min``/``max`` are the repository's documented extension).
REDUCE_OPS = ("add", "min", "max")


def active_backend() -> Backend:
    """The backend of the current execution context, resolving
    preferences on first call."""
    return current_context().backend()


def set_backend(
    backend: Union[str, Backend], *, persist: bool = False
) -> Backend:
    """Select the active backend by registry name or instance.

    Operates on the *current* execution context — the process-default
    one unless called inside a :func:`use_backend` scope.  With
    ``persist=True`` the name is also written to
    ``LocalPreferences.toml`` so future processes pick it up, mirroring
    Preferences.jl.  Persisting an ad-hoc instance is rejected because it
    cannot be reconstructed from a name.
    """
    if isinstance(backend, Backend):
        if persist:
            raise BackendError(
                "cannot persist a backend instance; pass its registry name"
            )
        return current_context().set_backend(backend)
    if persist:
        write_preference("backend", backend)
    return current_context().set_backend(backend)


def reset_backend() -> None:
    """Drop the current context's backend so the next use re-resolves
    preferences.  Only the calling context is affected."""
    current_context().reset()


def synchronize() -> None:
    """Synchronization point: drain the context's asynchronous launch
    queue, then synchronize the backend device.

    The default constructs are already synchronous; this is required
    only after ``launch(..., sync=False)`` (and kept for symmetry with
    the vendor models — it is a no-op on CPU backends with an empty
    queue).  Errors raised by queued kernels surface here.
    """
    ctx = current_context()
    ctx.drain()
    ctx.backend().synchronize()


# ---------------------------------------------------------------------------
# The staged dispatch pipeline
# ---------------------------------------------------------------------------


def _resolve(plan: LaunchPlan, ctx: ExecutionContext) -> LaunchPlan:
    """Stage 1: bind the context's backend and map user args to kernel
    args (backend arrays → raw storage), and attach the context's
    fault-handling policy."""
    plan.backend = ctx.backend()
    plan.resolved_args = plan.backend.resolve_args(plan.args)
    plan.arena = ctx.arena
    plan.policy = ctx.launch_policy
    return plan


def _compile(plan: LaunchPlan, ctx: ExecutionContext) -> LaunchPlan:
    """Stage 2: attach the compiled kernel, using the context's kernel
    cache when one is scoped (process-global otherwise), then check the
    parallel contract (races, bounds, reduction purity — see
    :mod:`repro.ir.verify`) under the active enforcement mode."""
    plan.kernel = compile_kernel(
        plan.fn,
        plan.ndim,
        plan.resolved_args,
        reduce=plan.is_reduce,
        cache=ctx.kernel_cache,
    )
    mode = active_verify_mode()
    if mode != "off":
        plan.diagnostics = verify_launch(
            plan.kernel,
            plan.dims,
            plan.resolved_args,
            plan.op if plan.is_reduce else None,
            mode,
        )
    return plan


def _schedule(plan: LaunchPlan, ctx: ExecutionContext) -> LaunchPlan:
    """Stage 3: record the backend's launch-shape/chunking decision on
    the plan (GPU thread/block shapes, CPU chunk domains, inline flag)."""
    plan.schedule = plan.backend.schedule(plan)
    return plan


def plan_access_ids(plan: LaunchPlan) -> tuple:
    """``(written_ids, read_ids)`` storage-id tuples for a staged plan.

    Traced kernels report exactly the arrays their stores/loads touch;
    opaque (interpreter-tier) kernels conservatively count every resolved
    ndarray on both sides.  Also used by :mod:`repro.ir.program` to build
    the dataflow graph's def-use edges.
    """
    kernel = plan.kernel
    trace = kernel.trace if kernel is not None else None
    if trace is None:
        every = tuple(
            id(a) for a in plan.resolved_args if isinstance(a, np.ndarray)
        )
        return every, every
    from ..ir import nodes as N

    written = tuple(
        dict.fromkeys(id(plan.resolved_args[st.array.pos]) for st in trace.stores)
    )
    read = tuple(
        dict.fromkeys(
            id(plan.resolved_args[node.array.pos])
            for expr in trace.expressions()
            for node in N.walk(expr)
            if isinstance(node, N.Load)
        )
    )
    return written, read


def _execute(plan: LaunchPlan, ctx: ExecutionContext) -> LaunchPlan:
    """Stage 4: account the dispatch, fire hooks, and hand the plan to
    the backend's narrowed ``execute`` entry point (with the launch
    policy's permanent-failure failover ladder around it)."""
    from .. import faults

    backend = plan.backend
    if plan.is_reduce:
        backend.accounting.n_reduce += 1
    else:
        backend.accounting.n_for += 1
    plan.sim_time_before = backend.accounting.sim_time
    ctx.fire_launch(plan)
    backend.account_portable_dispatch(plan.construct, plan.dims)
    written = plan.written_ids
    read = plan.read_ids
    if written is None or read is None:
        written, read = plan_access_ids(plan)
        plan.written_ids = written
        plan.read_ids = read
    # Fire external-access guards *before* the kernel runs: a launch
    # touching an array some graph optimistically optimized (sunk into an
    # arena buffer, dead-store-eliminated) must see the materialized,
    # unoptimized state — see repro.ir.writes / repro.ir.program.
    writes.note_access(read + written)
    plan.result = faults.execute_plan(plan, ctx)
    # Failover may have demoted plan.backend; read the clock that ran.
    plan.sim_time_after = plan.backend.accounting.sim_time
    # Version the arrays this launch stored to, so instantiated graphs
    # that hoisted loads from "const" arrays can detect writers they
    # could not see at instantiation (see repro.ir.writes).
    writes.note_writes(written)
    ctx.fire_complete(plan)
    return plan


def _stage(construct: str, dims, f: Callable, args: tuple, op: str) -> tuple:
    """Build a plan and run the pre-execution stages."""
    ctx = current_context()
    plan = LaunchPlan(
        construct=construct, dims=normalize_dims(dims), fn=f, args=args, op=op
    )
    _resolve(plan, ctx)
    _compile(plan, ctx)
    _schedule(plan, ctx)
    return plan, ctx


def _dispatch(construct: str, dims, f: Callable, args: tuple, op: str) -> LaunchPlan:
    """Run a construct through the full pipeline, synchronously.

    A synchronous construct issued after asynchronous launches observes
    their effects: the context queue is drained first (program order).
    """
    ctx = current_context()
    if ctx.pending_launches:
        ctx.drain()
    cap = ctx.graph_capture
    slot_map = None
    if cap is not None:
        # Relaxed stream capture (see repro.graph): the construct still
        # executes eagerly through the full pipeline; its staged plan is
        # recorded afterwards, with ScalarSlot wrappers stripped to
        # their concrete values first (slots are a graph-level concept —
        # the tracer and cache keys only ever see real scalars).
        args, slot_map = cap.strip_slots(args)
    plan, ctx = _stage(construct, dims, f, args, op)
    _execute(plan, ctx)
    if cap is not None:
        cap.record(plan, slot_map)
    return plan


def _validate_op(op: str) -> None:
    if op not in REDUCE_OPS:
        raise InvalidReduceOpError(
            f"unknown reduction op {op!r}; expected one of "
            "{'add', 'min', 'max'}"
        )


# ---------------------------------------------------------------------------
# The paper's constructs (synchronous, unchanged semantics)
# ---------------------------------------------------------------------------


def parallel_for(dims, f: Callable, *args: Any) -> None:
    """Apply the scalar kernel ``f`` at every index of the launch domain.

    Parameters
    ----------
    dims:
        ``N`` (1-D), ``(M, N)`` (2-D) or ``(L, M, N)`` (3-D) — the number
        of iterations per axis, typically the array sizes (paper Fig. 2).
    f:
        The kernel: ``f(i, *args)``, ``f(i, j, *args)`` or
        ``f(i, j, k, *args)``.  Indices are 0-based.
    *args:
        The kernel's parameters — backend arrays (from
        :func:`repro.array`), plain ndarrays (CPU backends), and scalars.

    The call returns only after the computation has completed.
    """
    _dispatch("for", dims, f, args, op="add")


def parallel_reduce(dims, f: Callable, *args: Any, op: str = "add") -> float:
    """Reduce the values returned by ``f`` over the launch domain.

    Same shape/kernel conventions as :func:`parallel_for`; ``f`` must
    return a value on every path.  ``op`` selects the fold: ``"add"``
    (default, the paper's only reduction), ``"min"`` or ``"max"`` —
    anything else raises :class:`ValueError` here, at the API boundary.

    Returns the reduced value as a Python float.  (JACC returns a
    one-element device array; we return the host scalar directly and
    charge the device→host copy to the model, which is what the paper's
    DOT timing includes.)
    """
    _validate_op(op)
    return _dispatch("reduce", dims, f, args, op=op).result


# ---------------------------------------------------------------------------
# The reified-launch surface
# ---------------------------------------------------------------------------


def launch(
    dims,
    f: Callable,
    *args: Any,
    reduce: bool = False,
    op: str = "add",
    sync: bool = True,
) -> LaunchHandle:
    """Dispatch a construct as an explicit :class:`LaunchPlan`.

    With ``sync=True`` (default) this is :func:`parallel_for` /
    :func:`parallel_reduce` returning an already-completed
    :class:`LaunchHandle` — same synchronous guarantee as the paper's
    constructs.

    With ``sync=False`` the fully staged plan (resolved, compiled,
    scheduled) is enqueued on the context's launch stream and the handle
    returns immediately.  Launches on one stream execute in submission
    order (so dependent kernels stay correct); they overlap with the
    submitting thread.  ``handle.wait()`` blocks for one launch,
    ``handle.result()`` additionally returns the reduce value, and
    :func:`synchronize` drains the whole stream.  Staging errors (unknown
    backend, untraceable kernel, bad op) still raise immediately at the
    call site; only execution is deferred.
    """
    if reduce:
        _validate_op(op)
    construct = "reduce" if reduce else "for"
    if sync:
        return LaunchHandle(_dispatch(construct, dims, f, args, op=op))
    plan, ctx = _stage(construct, dims, f, args, op=op)
    _check_async_hazards(plan, ctx)
    future = ctx.submit(lambda: _execute(plan, ctx))
    handle = LaunchHandle(plan, future)
    ctx.enqueue(handle)
    return handle


def _check_async_hazards(plan: LaunchPlan, ctx: ExecutionContext) -> None:
    """V601: flag a ``sync=False`` launch racing an unsynchronized one.

    Launches on one context's stream execute in submission order, so a
    data dependence between pending launches is *correct* — but it means
    the new launch cannot overlap the stream, which is the only reason
    to pass ``sync=False``.  The diagnostic catches the pattern where a
    user assumed two async launches run concurrently while they in fact
    serialize on a RAW/WAW dependence (or would race on a multi-stream
    backend).  Enforcement follows the kernel-verifier mode: ``warn``
    emits :class:`~repro.ir.diagnostics.KernelVerificationWarning`,
    ``error`` raises, ``off`` skips the analysis entirely.
    """
    mode = active_verify_mode()
    if mode == "off":
        return
    pending = ctx.pending_handles()
    if not pending:
        return
    from ..ir.effects import async_hazards

    diags = async_hazards(plan, [h.plan for h in pending])
    if not diags:
        return
    if mode == "error":
        from .exceptions import KernelVerificationError

        raise KernelVerificationError(plan.label, diags)
    import warnings

    from ..ir.diagnostics import KernelVerificationWarning

    for d in diags:
        warnings.warn(str(d), KernelVerificationWarning, stacklevel=3)
