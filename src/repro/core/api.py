"""The portable front end: ``parallel_for`` and ``parallel_reduce``.

These two constructs are the whole user-facing compute surface of the
model (paper §III): the programmer writes a scalar kernel ``f(i, ...)`` /
``f(i, j, ...)`` separately and in advance, then hands it to a construct
together with the iteration count(s) and the kernel's arguments.  Both
constructs are **synchronous** — when they return, the computation has
completed on the backend (paper §IV, last paragraph).

Backend selection follows the paper's Preferences mechanism (see
:mod:`repro.core.preferences`): the active backend is resolved lazily on
first use from ``PYACC_BACKEND`` / ``LocalPreferences.toml`` and defaults
to the threads (Base.Threads-analogue) backend.  ``set_backend`` switches
at runtime and can persist the choice.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from ..ir.compile import compile_kernel
from .backend import Backend, normalize_dims
from .exceptions import BackendError
from .preferences import resolve_backend_name, write_preference

__all__ = [
    "parallel_for",
    "parallel_reduce",
    "active_backend",
    "set_backend",
    "reset_backend",
    "synchronize",
]

_active: Optional[Backend] = None


def active_backend() -> Backend:
    """The backend in use, resolving preferences on first call."""
    global _active
    if _active is None:
        name = resolve_backend_name()
        _active = _instantiate(name)
    return _active


def _instantiate(name: str) -> Backend:
    # Imported here (not at module top) so the registry's lazy loading —
    # the weak-dependency analogue — actually stays lazy.
    from ..backends.registry import create_backend

    return create_backend(name)


def set_backend(
    backend: Union[str, Backend], *, persist: bool = False
) -> Backend:
    """Select the active backend by registry name or instance.

    With ``persist=True`` the name is also written to
    ``LocalPreferences.toml`` so future processes pick it up, mirroring
    Preferences.jl.  Persisting an ad-hoc instance is rejected because it
    cannot be reconstructed from a name.
    """
    global _active
    if isinstance(backend, Backend):
        if persist:
            raise BackendError(
                "cannot persist a backend instance; pass its registry name"
            )
        _active = backend
        return _active
    instance = _instantiate(backend)
    if persist:
        write_preference("backend", backend)
    _active = instance
    return _active


def reset_backend() -> None:
    """Drop the active backend so the next use re-resolves preferences."""
    global _active
    _active = None


def synchronize() -> None:
    """Explicit synchronization point.  The constructs already synchronize
    (the API is synchronous); this exists for symmetry with the vendor
    models and is a no-op on CPU backends."""
    active_backend().synchronize()


def parallel_for(dims, f: Callable, *args: Any) -> None:
    """Apply the scalar kernel ``f`` at every index of the launch domain.

    Parameters
    ----------
    dims:
        ``N`` (1-D), ``(M, N)`` (2-D) or ``(L, M, N)`` (3-D) — the number
        of iterations per axis, typically the array sizes (paper Fig. 2).
    f:
        The kernel: ``f(i, *args)``, ``f(i, j, *args)`` or
        ``f(i, j, k, *args)``.  Indices are 0-based.
    *args:
        The kernel's parameters — backend arrays (from
        :func:`repro.array`), plain ndarrays (CPU backends), and scalars.

    The call returns only after the computation has completed.
    """
    shape = normalize_dims(dims)
    backend = active_backend()
    kargs = backend.resolve_args(args)
    kernel = compile_kernel(f, len(shape), kargs, reduce=False)
    backend.accounting.n_for += 1
    backend.account_portable_dispatch("for", shape)
    backend.run_for(shape, kernel, kargs)


def parallel_reduce(dims, f: Callable, *args: Any, op: str = "add") -> float:
    """Reduce the values returned by ``f`` over the launch domain.

    Same shape/kernel conventions as :func:`parallel_for`; ``f`` must
    return a value on every path.  ``op`` selects the fold: ``"add"``
    (default, the paper's only reduction), ``"min"`` or ``"max"``.

    Returns the reduced value as a Python float.  (JACC returns a
    one-element device array; we return the host scalar directly and
    charge the device→host copy to the model, which is what the paper's
    DOT timing includes.)
    """
    shape = normalize_dims(dims)
    backend = active_backend()
    kargs = backend.resolve_args(args)
    kernel = compile_kernel(f, len(shape), kargs, reduce=True)
    backend.accounting.n_reduce += 1
    backend.account_portable_dispatch("reduce", shape)
    return backend.run_reduce(shape, kernel, kargs, op=op)
