"""A KernelAbstractions-flavoured API — the paper's §III-A comparison.

The paper contrasts JACC with KernelAbstractions.jl (its Fig. 4): KA is
portable too, but demands more from the programmer —

1. the **granularity** (workgroup size) is chosen by the user, per
   backend (``groupsize = isgpu(backend) ? 256 : 1024`` in Fig. 4);
2. memory is allocated through **backend-specific** calls
   (``allocate(backend, Float64, n)``) rather than a unified constructor;
3. kernels are **asynchronous**: correctness requires an explicit
   ``synchronize(backend)`` after the launch.

This module reproduces that programming surface on top of the same
engine, so the repository can demonstrate the paper's productivity
argument *executably*: ``tests/test_ka.py`` runs the identical AXPY
through both front ends (same results), counts the extra ceremony, and
shows the failure modes KA exposes that JACC structurally cannot have
(missing synchronize, illegal groupsize).

Usage (cf. the paper's Fig. 4)::

    from repro import ka

    @ka.kernel
    def axpy_ka_kernel(i, alpha, x, y):
        x[i] += alpha * y[i]

    backend = ka.get_backend(x)
    groupsize = 256 if ka.isgpu(backend) else 1024
    kernel = axpy_ka_kernel(backend, groupsize)
    kernel(alpha, x, y, ndrange=size)
    ka.synchronize(backend)
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .backends.gpusim.backend import GpuSimBackend
from .backends.gpusim.memory import DeviceArray
from .core import api as core_api
from .core.backend import Backend, normalize_dims
from .core.exceptions import BackendError, LaunchConfigError
from .core.launch import LaunchConfig
from .ir.compile import compile_kernel
from .ir.vectorizer import IndexDomain

__all__ = [
    "kernel",
    "get_backend",
    "allocate",
    "isgpu",
    "synchronize",
    "UnsynchronizedError",
    "KAKernel",
    "ConfiguredKernel",
]


class UnsynchronizedError(BackendError):
    """A KA launch's results were consumed before ``synchronize``."""


#: Backends with launches pending synchronization (KA's async model).
_PENDING: set[int] = set()


def get_backend(array: Any) -> Backend:
    """KA's ``get_backend(x)``: recover the backend owning an array."""
    if isinstance(array, DeviceArray):
        active = core_api.active_backend()
        if isinstance(active, GpuSimBackend) and active.device is array.device:
            return active
        # wrap the owning device in a fresh portable backend
        return GpuSimBackend(array.device, name=f"{array.device.name}-ka")
    if isinstance(array, np.ndarray):
        return core_api.active_backend()
    raise BackendError(
        f"cannot determine a backend for {type(array).__name__}"
    )


def isgpu(backend: Backend) -> bool:
    """KA's ``KernelAbstractions.isgpu``."""
    return backend.device_kind == "gpu"


def allocate(backend: Backend, dtype, n: int):
    """KA's backend-specific ``allocate`` (contrast: JACC's one
    ``repro.array`` works everywhere)."""
    return backend.array(np.zeros(int(n), dtype=dtype))


def synchronize(backend: Backend) -> None:
    """KA's explicit synchronization — mandatory after launches."""
    backend.synchronize()
    _PENDING.discard(id(backend))


class ConfiguredKernel:
    """A kernel bound to (backend, groupsize) — KA's ``kernel!``."""

    def __init__(self, fn: Callable, backend: Backend, groupsize: int):
        if groupsize <= 0:
            raise LaunchConfigError(f"groupsize must be positive, got {groupsize}")
        if isinstance(backend, GpuSimBackend):
            limit = backend.device.profile.max_block_dim_x
            if groupsize > limit:
                raise LaunchConfigError(
                    f"groupsize {groupsize} exceeds the device limit {limit} "
                    f"on {backend.device.profile.display_name} — KA makes "
                    "the user own this choice; JACC derives it"
                )
        self.fn = fn
        self.backend = backend
        self.groupsize = groupsize

    def __call__(self, *args: Any, ndrange) -> None:
        dims = normalize_dims(ndrange)
        if len(dims) != 1:
            raise LaunchConfigError(
                "this KA comparison surface implements 1-D ndranges (the "
                "paper's Fig. 4 example); use the JACC front end for 2-D/3-D"
            )
        backend = self.backend
        kargs = backend.resolve_args(args)
        compiled = compile_kernel(self.fn, 1, kargs, reduce=False)
        if isinstance(backend, GpuSimBackend):
            (n,) = dims
            config = LaunchConfig(
                threads=(self.groupsize,),
                blocks=(-(-n // self.groupsize),),
            )
            # native-style launch with the *user's* config (no portable
            # dispatch overhead — KA is a lower-level model)
            backend.device.launch_config(dims)  # validates dims
            compiled.run_for(IndexDomain.full(dims), kargs)
            backend.device._charge_kernel(compiled, n, 1, self.fn.__name__)
            del config
        else:
            backend.run_for(dims, compiled, kargs)
        _PENDING.add(id(backend))


class KAKernel:
    """The ``@ka.kernel`` wrapper — configure with (backend, groupsize)."""

    def __init__(self, fn: Callable):
        self.fn = fn
        self.__name__ = getattr(fn, "__name__", "ka_kernel")

    def __call__(self, backend: Backend, groupsize: int) -> ConfiguredKernel:
        return ConfiguredKernel(self.fn, backend, groupsize)


def kernel(fn: Callable) -> KAKernel:
    """Decorator: mark a scalar function as a KA-style kernel."""
    return KAKernel(fn)


def pending_launches(backend: Backend) -> bool:
    """True when ``backend`` has launches not yet synchronized (test
    hook for the async contract)."""
    return id(backend) in _PENDING
