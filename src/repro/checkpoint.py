"""In-memory checkpoint/restore for iterative solvers.

A :class:`SolverCheckpoint` periodically snapshots a solver's working
state (host copies of the arrays plus any scalars) so a mid-solve device
failure can roll back to the last checkpoint instead of restarting the
whole run.  The apps wire it in behind a ``checkpoint=`` keyword:

>>> import repro
>>> from repro.apps.hpccg import hpccg_problem, hpccg_solve
>>> a, b = hpccg_problem(8, 8, 8)
>>> ck = repro.SolverCheckpoint(interval=5)
>>> res = hpccg_solve(a, b, checkpoint=ck)  # doctest: +SKIP

Snapshots are deep host copies — restore hands back *fresh* copies each
time, so a failed retry after restore cannot corrupt the snapshot.  The
restore budget (``max_restores``) bounds how long a solver can thrash on
a persistently faulty node before the original error surfaces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .core.exceptions import CheckpointError

__all__ = ["SolverCheckpoint"]


def _snapshot_value(value):
    if isinstance(value, np.ndarray):
        return np.array(value, copy=True)
    raw = getattr(value, "__pyacc_raw_storage__", None)
    if raw is not None:
        return np.array(raw(), copy=True)
    if isinstance(value, (list, tuple)):
        return type(value)(_snapshot_value(v) for v in value)
    return value


def _restore_value(value):
    if isinstance(value, np.ndarray):
        return np.array(value, copy=True)
    if isinstance(value, (list, tuple)):
        return type(value)(_restore_value(v) for v in value)
    return value


class SolverCheckpoint:
    """Periodic in-memory snapshot/restore of solver state.

    Parameters
    ----------
    interval:
        Snapshot every ``interval`` iterations (``due(it)`` is true when
        ``it`` is a positive multiple of it).
    max_restores:
        How many times :meth:`restore` may be called before it raises
        :class:`~repro.core.exceptions.CheckpointError` — the brake on a
        solver ping-ponging against a persistently failing device.

    State is passed as keyword arguments to :meth:`save`; device arrays
    (anything exposing ``__pyacc_raw_storage__``) and ndarrays are
    deep-copied to host memory, scalars are kept as-is.
    """

    def __init__(self, interval: int = 10, max_restores: int = 8):
        if interval < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {interval}")
        if max_restores < 0:
            raise ValueError(f"max_restores must be >= 0, got {max_restores}")
        self.interval = int(interval)
        self.max_restores = int(max_restores)
        self._snapshot: Optional[dict] = None
        self._iteration: Optional[int] = None
        self.saves = 0
        self.restores = 0

    # -- querying ---------------------------------------------------------
    @property
    def has_snapshot(self) -> bool:
        return self._snapshot is not None

    @property
    def iteration(self) -> Optional[int]:
        """The iteration of the last snapshot (``None`` before any)."""
        return self._iteration

    def due(self, iteration: int) -> bool:
        """Whether a snapshot is due at this iteration."""
        return iteration > 0 and iteration % self.interval == 0

    # -- snapshot / restore ----------------------------------------------
    def save(self, iteration: int, **state) -> None:
        """Snapshot ``state`` (deep host copies) at ``iteration``."""
        self._snapshot = {k: _snapshot_value(v) for k, v in state.items()}
        self._iteration = int(iteration)
        self.saves += 1
        from . import faults

        faults.record_checkpoint_save()

    def restore(self) -> dict:
        """Return fresh copies of the last snapshot's state.

        Raises :class:`CheckpointError` with no snapshot, or once the
        restore budget is spent.
        """
        if self._snapshot is None:
            raise CheckpointError("no checkpoint snapshot to restore")
        if self.restores >= self.max_restores:
            raise CheckpointError(
                f"checkpoint restore budget exhausted "
                f"({self.max_restores} restores)"
            )
        self.restores += 1
        from . import faults

        faults.record_event(
            faults.FaultEvent(
                site="checkpoint",
                kind="checkpoint",
                action="restore",
                attempt=self.restores,
                detail=f"rolled back to iteration {self._iteration}",
            )
        )
        return {k: _restore_value(v) for k, v in self._snapshot.items()}

    def stats(self) -> dict:
        return {
            "saves": self.saves,
            "restores": self.restores,
            "interval": self.interval,
            "last_iteration": self._iteration,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SolverCheckpoint interval={self.interval} saves={self.saves} "
            f"restores={self.restores} at_iteration={self._iteration}>"
        )
