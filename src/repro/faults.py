"""Deterministic fault injection + the resilient launch policy.

At exascale, transient device faults are routine, not exceptional — a
runtime that crashes a whole CG/LBM run on the first ``DeviceError`` is
not usable on machines the paper targets (Frontier / Perlmutter /
Aurora).  This module makes fault behaviour a first-class, *testable*
layer over the staged dispatch pipeline:

Injection side — :class:`FaultPlan`
    A per-:class:`~repro.core.context.ExecutionContext` plan that injects
    typed failures (:class:`~repro.core.exceptions.TransientDeviceError` /
    :class:`~repro.core.exceptions.PermanentDeviceError`) at realistic
    seams.  Every seam probes **before** the guarded operation's side
    effects, so a retried or failed-over operation never double-applies a
    kernel.  Sites:

    - ``gpusim.launch`` — portable kernel execution on a simulated GPU;
    - ``gpusim.device_launch`` — the native ``Device.launch`` path;
    - ``gpusim.to_device`` — H2D transfer;
    - ``gpusim.fold`` — the second (fold) reduction kernel;
    - ``threads.chunk`` — one worker chunk of the threads backend;
    - ``multidevice.chunk`` — one device's chunk of a multi-device plan;
    - ``arena.frame`` — scratch-buffer frame open (allocation failure);
    - ``cluster.spawn`` — forking one cluster worker process;
    - ``cluster.shard`` — dispatching one shard to a cluster worker;
    - ``cluster.halo`` — one halo-exchange slab of a sharded stencil;
    - ``cluster.reduce`` — one combine of the cross-worker fold tree.

    Schedules are **deterministic**: whether probe ``k`` at a site faults
    is a pure function of ``(seed, site, k)`` (a stable blake2b hash, not
    Python's salted ``hash``), so the same seed always produces the same
    fault schedule.  Configure via API (:func:`set_fault_plan`), the
    ``PYACC_FAULTS`` environment variable, or the ``faults`` preferences
    key — env > prefs > default (no injection), matching the verifier's
    precedence style.

    Beyond raised errors, a plan can schedule **hard worker kills**
    (``kind="kill"`` entries, spec key ``kill=``): when the cluster
    backend dispatches the shard whose ordinal matches, it sends the
    target worker process ``SIGKILL`` — a real dead process, not a
    simulated exception — and the supervision/rebalance machinery must
    recover.  Kill entries are consumed once, via
    :meth:`FaultPlan.take_kill`; ``check`` never raises for them.

Policy side — :class:`LaunchPolicy`
    Attached to every :class:`~repro.core.plan.LaunchPlan` at resolve
    time and enforced around ``Backend.execute``:

    - transient failures retry with capped exponential backoff
      (in-backend, so native ``run_for`` paths are covered too);
    - a permanent device failure triggers *failover*: the multi-device
      backend drops the dead device and rebalances the remaining rows
      over the survivors (``weighted_chunks``); a fully-failed backend is
      demoted down the ladder (multidevice → single device → threads →
      serial) by the dispatch stage, stickily, reusing the already
      resolved host storage so results stay correct;
    - ``sync=False`` handles drained by ``synchronize()`` honour a
      wall-clock watchdog (:class:`~repro.core.exceptions.LaunchTimeoutError`);
    - every injection/retry/failover is recorded as a :class:`FaultEvent`
      on the plan, the context, and process-wide counters (``repro.bench
      --json`` embeds them).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from .core.exceptions import (
    PermanentDeviceError,
    PreferencesError,
    TransientDeviceError,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from .core.backend import Backend
    from .core.plan import LaunchPlan

__all__ = [
    "FAULT_SITES",
    "FaultEvent",
    "FaultPlan",
    "InjectedFault",
    "LaunchPolicy",
    "DEFAULT_POLICY",
    "fault_plan",
    "set_fault_plan",
    "launch_policy",
    "set_launch_policy",
    "parse_fault_spec",
    "resolve_fault_plan",
    "global_fault_stats",
    "reset_global_fault_stats",
]

_ENV_FAULTS = "PYACC_FAULTS"
_PREFS_KEY = "faults"

#: Every seam the harness can inject at.
FAULT_SITES = (
    "gpusim.launch",
    "gpusim.device_launch",
    "gpusim.to_device",
    "gpusim.fold",
    "threads.chunk",
    "multidevice.chunk",
    "arena.frame",
    "cluster.spawn",
    "cluster.shard",
    "cluster.halo",
    "cluster.reduce",
)


# ---------------------------------------------------------------------------
# Events + process-wide counters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One observable fault-handling step.

    ``action`` is what the runtime did: ``"inject"`` (a fault was
    raised), ``"retry"`` (a transient is being retried), ``"exhausted"``
    (retry budget spent, original error re-raised), ``"failover"`` (work
    moved off a failed device/backend), ``"watchdog"`` (an async handle
    timed out), ``"restore"`` (a solver rolled back to a checkpoint),
    ``"kill"`` (a cluster worker process was SIGKILLed by schedule).
    """

    site: str
    kind: str  # "transient" | "permanent" | "timeout" | "checkpoint" | "kill"
    action: str
    attempt: int = 0
    device_id: Optional[str] = None
    kernel: Optional[str] = None
    detail: str = ""


class _FaultCounters:
    """Process-wide fault/retry/failover totals (bench ``--json``)."""

    _FIELDS = (
        "probes",
        "transients_injected",
        "permanents_injected",
        "retries",
        "retry_exhausted",
        "failovers",
        "kills",
        "watchdog_timeouts",
        "checkpoint_saves",
        "checkpoint_restores",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def snapshot(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    def reset(self) -> None:
        with self._lock:
            for name in self._FIELDS:
                setattr(self, name, 0)


_COUNTERS = _FaultCounters()


def global_fault_stats() -> dict:
    """Process-wide fault activity since start (all contexts)."""
    return _COUNTERS.snapshot()


def reset_global_fault_stats() -> None:
    """Zero the process-wide counters (tests / bench isolation)."""
    _COUNTERS.reset()


def record_event(event: FaultEvent, plan: Optional["LaunchPlan"] = None) -> None:
    """File an event with the plan, the current context, and the globals."""
    if plan is not None:
        plan.fault_events.append(event)
    try:
        from .core.context import current_context

        current_context().fault_events.append(event)
    except Exception:  # pragma: no cover - never block fault handling
        pass
    if event.action == "retry":
        _COUNTERS.bump("retries")
    elif event.action == "exhausted":
        _COUNTERS.bump("retry_exhausted")
    elif event.action == "failover":
        _COUNTERS.bump("failovers")
    elif event.action == "kill":
        _COUNTERS.bump("kills")
    elif event.action == "watchdog":
        _COUNTERS.bump("watchdog_timeouts")
    elif event.action == "restore":
        _COUNTERS.bump("checkpoint_restores")


def record_checkpoint_save() -> None:
    _COUNTERS.bump("checkpoint_saves")


# ---------------------------------------------------------------------------
# The injection plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InjectedFault:
    """One explicitly scheduled fault.

    With ``device_id`` the ``index`` counts probes *of that device* at
    the site; without, it counts all probes at the site.  Explicit
    schedules compose with the probabilistic rates (both are checked).

    ``kind="kill"`` entries are the hard-termination schedule: they are
    ignored by :meth:`FaultPlan.check` (no exception is raised) and
    instead consumed once by :meth:`FaultPlan.take_kill` — the cluster
    backend SIGKILLs the worker whose shard-dispatch ordinal matches
    ``index``.
    """

    site: str
    index: int
    kind: str  # "transient" | "permanent" | "kill"
    device_id: Optional[str] = None


def _stable_uniform(seed: int, site: str, index: int) -> float:
    """Deterministic uniform in [0, 1) from ``(seed, site, index)``.

    Uses blake2b, not ``hash()`` — Python string hashing is salted per
    process, which would make "same seed, same schedule" false across
    runs (and CI).
    """
    key = f"{seed}:{site}:{index}".encode()
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class FaultPlan:
    """A deterministic, seeded schedule of injected device faults.

    Parameters
    ----------
    seed:
        Schedule seed.  Same seed (and same probe sequence) → same fault
        schedule, bit for bit.
    transient_rate / permanent_rate:
        Per-probe probability of injecting a transient / permanent fault
        at an enabled site.
    sites:
        Sites to inject at (default: all of :data:`FAULT_SITES`).
    max_faults:
        Total injection budget across the plan's lifetime (``None`` =
        unlimited).  Explicitly ``scheduled`` faults don't count against
        the budget — they were asked for by index.
    scheduled:
        Explicit :class:`InjectedFault` entries for precise tests
        ("kill device 1 at its 3rd chunk").

    A permanent fault *sticks*: once injected for a device, every later
    probe of that device raises ``PermanentDeviceError``, which is what
    makes backend-level failover observable (and necessary).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        transient_rate: float = 0.0,
        permanent_rate: float = 0.0,
        sites: Optional[Sequence[str]] = None,
        max_faults: Optional[int] = None,
        scheduled: Sequence[InjectedFault] = (),
    ):
        if not 0.0 <= transient_rate <= 1.0:
            raise ValueError(f"transient_rate must be in [0,1], got {transient_rate}")
        if not 0.0 <= permanent_rate <= 1.0:
            raise ValueError(f"permanent_rate must be in [0,1], got {permanent_rate}")
        if sites is not None:
            unknown = set(sites) - set(FAULT_SITES)
            if unknown:
                raise ValueError(
                    f"unknown fault sites {sorted(unknown)}; "
                    f"valid sites: {FAULT_SITES}"
                )
        for f in scheduled:
            if f.site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {f.site!r} in schedule")
            if f.kind not in ("transient", "permanent", "kill"):
                raise ValueError(
                    f"fault kind must be transient|permanent|kill, got {f.kind!r}"
                )
        self.seed = int(seed)
        self.transient_rate = float(transient_rate)
        self.permanent_rate = float(permanent_rate)
        self.sites = tuple(sites) if sites is not None else None
        self.max_faults = max_faults
        self.scheduled = tuple(scheduled)
        self._lock = threading.Lock()
        self._counts: dict = {}  # (site,) and (site, device_id) probe counters
        self._dead: set = set()  # device_ids with a sticky permanent fault
        #: Chronological record of every injected fault: (site, index,
        #: kind, device_id) — the determinism tests compare these.
        self.injected: list[tuple] = []

    # -- probing ----------------------------------------------------------
    def _site_enabled(self, site: str) -> bool:
        return self.sites is None or site in self.sites

    def check(
        self,
        site: str,
        device_id: Optional[str] = None,
        ordinal: Optional[int] = None,
    ) -> None:
        """One probe: raise the scheduled/sampled fault for this seam.

        ``ordinal`` overrides the per-site counter for seams whose probe
        *order* is nondeterministic (parallel worker chunks): the caller
        supplies a deterministic per-plan index instead.
        """
        _COUNTERS.bump("probes")
        with self._lock:
            k_site = self._counts.get((site,), 0)
            self._counts[(site,)] = k_site + 1
            if device_id is not None:
                k_dev = self._counts.get((site, device_id), 0)
                self._counts[(site, device_id)] = k_dev + 1
            else:
                k_dev = k_site
            if device_id is not None and device_id in self._dead:
                self.injected.append((site, k_site, "permanent", device_id))
                raise_permanent = True
            else:
                raise_permanent = False
        if raise_permanent:
            _COUNTERS.bump("permanents_injected")
            raise PermanentDeviceError(
                f"injected permanent fault: device {device_id!r} is down "
                f"(site {site})",
                device_id=device_id,
                operation=site,
            )
        index = k_site if ordinal is None else ordinal
        kind = None
        for f in self.scheduled:
            if f.site != site or f.kind == "kill":
                continue  # kills are consumed by take_kill, never raised
            if f.device_id is not None:
                if f.device_id == device_id and f.index == k_dev:
                    kind = f.kind
                    break
            elif f.index == index:
                kind = f.kind
                break
        counted = False
        if kind is None and self._site_enabled(site):
            if ordinal is None:
                u = _stable_uniform(self.seed, site, index)
            else:
                # Pool chunks re-probe the *same* ordinal on every retry
                # (the ordinal pins the chunk's position in the schedule,
                # not the attempt).  Salt the draw with a per-ordinal
                # attempt counter so a retried chunk resamples — still a
                # pure function of the seed, but not a guaranteed
                # re-fault that would defeat the retry policy.
                with self._lock:
                    attempt = self._counts.get(("attempt", site, ordinal), 0)
                    self._counts[("attempt", site, ordinal)] = attempt + 1
                u = _stable_uniform(self.seed, f"{site}@{ordinal}", attempt)
            if u < self.permanent_rate:
                kind = "permanent"
            elif u < self.permanent_rate + self.transient_rate:
                kind = "transient"
            counted = kind is not None
        if kind is None:
            return
        with self._lock:
            if counted:
                if (
                    self.max_faults is not None
                    and self._budget_spent() >= self.max_faults
                ):
                    return
            self.injected.append((site, index, kind, device_id))
            if kind == "permanent" and device_id is not None:
                self._dead.add(device_id)
        if kind == "permanent":
            _COUNTERS.bump("permanents_injected")
            raise PermanentDeviceError(
                f"injected permanent fault at {site}[{index}]",
                device_id=device_id,
                operation=site,
            )
        _COUNTERS.bump("transients_injected")
        raise TransientDeviceError(
            f"injected transient fault at {site}[{index}]",
            device_id=device_id,
            operation=site,
        )

    def _budget_spent(self) -> int:
        scheduled_keys = {(f.site, f.kind) for f in self.scheduled}
        return sum(
            1 for (site, _i, kind, _d) in self.injected
            if (site, kind) not in scheduled_keys
        )

    def take_kill(
        self,
        site: str,
        ordinal: int,
        device_id: Optional[str] = None,
    ) -> bool:
        """Consume a scheduled ``kind="kill"`` entry matching this probe.

        Returns True exactly once per matching entry — the caller then
        hard-terminates the target (the cluster backend SIGKILLs the
        worker the shard was dispatched to).  ``ordinal`` is the
        deterministic dispatch ordinal (``next_ordinal`` order); an
        entry with a ``device_id`` additionally requires the worker
        name to match.
        """
        fired = False
        with self._lock:
            for k, f in enumerate(self.scheduled):
                if f.kind != "kill" or f.site != site:
                    continue
                if f.index != ordinal:
                    continue
                if f.device_id is not None and f.device_id != device_id:
                    continue
                key = ("kill-done", site, k)
                if self._counts.get(key):
                    continue
                self._counts[key] = 1
                self.injected.append((site, ordinal, "kill", device_id))
                fired = True
                break
        return fired

    # -- introspection / control -------------------------------------------
    def kill_device(self, device_id: str) -> None:
        """Mark a device permanently failed from now on."""
        with self._lock:
            self._dead.add(device_id)

    def is_dead(self, device_id: str) -> bool:
        with self._lock:
            return device_id in self._dead

    def next_ordinal(self, site: str, n: int = 1) -> int:
        """Reserve ``n`` deterministic ordinals for out-of-order probes.

        Backends whose chunks probe from worker threads (nondeterministic
        order) reserve a contiguous ordinal block in the submitting
        thread, so the schedule stays a pure function of the seed.
        """
        with self._lock:
            base = self._counts.get(("ordinal", site), 0)
            self._counts[("ordinal", site)] = base + n
        return base

    def stats(self) -> dict:
        with self._lock:
            return {
                "injected": len(self.injected),
                "transients": sum(1 for f in self.injected if f[2] == "transient"),
                "permanents": sum(1 for f in self.injected if f[2] == "permanent"),
                "kills": sum(1 for f in self.injected if f[2] == "kill"),
                "dead_devices": sorted(self._dead),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} transient={self.transient_rate} "
            f"permanent={self.permanent_rate} injected={len(self.injected)}>"
        )


# ---------------------------------------------------------------------------
# Env / prefs configuration  (precedence: env > prefs > default)
# ---------------------------------------------------------------------------


def parse_fault_spec(spec: str) -> Optional[FaultPlan]:
    """Parse a ``PYACC_FAULTS`` spec string into a :class:`FaultPlan`.

    Format: comma-separated ``key=value`` pairs —
    ``seed=42,transient=0.02,permanent=0.001,sites=threads.chunk|gpusim.launch,max=100``.
    ``off`` (or an empty string) disables injection.

    The ``kill=`` key schedules hard worker terminations for the
    cluster backend: ``kill=cluster.shard:3|cluster.shard:7`` SIGKILLs
    the worker receiving shard-dispatch ordinal 3, then the one
    receiving ordinal 7 (ordinals count dispatches process-wide, in
    ``next_ordinal`` reservation order).  Examples::

        PYACC_FAULTS="seed=1,transient=0.01,sites=cluster.shard|cluster.halo"
        PYACC_FAULTS="seed=7,kill=cluster.shard:2"
        PYACC_FAULTS="seed=1337,transient=0.005,max=200,kill=cluster.shard:40"
    """
    spec = spec.strip()
    if not spec or spec.lower() == "off":
        return None
    kwargs: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise PreferencesError(
                f"malformed {_ENV_FAULTS} entry {part!r}; expected key=value"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "transient":
                kwargs["transient_rate"] = float(value)
            elif key == "permanent":
                kwargs["permanent_rate"] = float(value)
            elif key == "sites":
                kwargs["sites"] = tuple(
                    s.strip() for s in value.split("|") if s.strip()
                )
            elif key == "max":
                kwargs["max_faults"] = int(value)
            elif key == "kill":
                entries = []
                for item in value.split("|"):
                    item = item.strip()
                    if not item:
                        continue
                    site, sep, index = item.rpartition(":")
                    if not sep or not site:
                        raise PreferencesError(
                            f"malformed {_ENV_FAULTS} kill entry {item!r}; "
                            "expected site:ordinal (e.g. cluster.shard:3)"
                        )
                    entries.append(
                        InjectedFault(site=site, index=int(index), kind="kill")
                    )
                kwargs["scheduled"] = tuple(kwargs.get("scheduled", ())) + tuple(
                    entries
                )
            else:
                raise PreferencesError(
                    f"unknown {_ENV_FAULTS} key {key!r}; valid keys: "
                    "seed, transient, permanent, sites, max, kill"
                )
        except ValueError as exc:
            raise PreferencesError(
                f"bad {_ENV_FAULTS} value for {key!r}: {value!r} ({exc})"
            ) from exc
    try:
        return FaultPlan(kwargs.pop("seed", 0), **kwargs)
    except ValueError as exc:
        raise PreferencesError(f"invalid {_ENV_FAULTS} spec: {exc}") from exc


def resolve_fault_plan() -> Optional[FaultPlan]:
    """Build the configured fault plan: env > prefs file > None."""
    env = os.environ.get(_ENV_FAULTS)
    if env is not None:
        return parse_fault_spec(env)
    from .core.preferences import read_preferences

    spec = read_preferences().get(_PREFS_KEY)
    if spec is None:
        return None
    if not isinstance(spec, str):
        raise PreferencesError(
            f"preference {_PREFS_KEY!r} must be a spec string, got {spec!r}"
        )
    return parse_fault_spec(spec)


# The fast-path gate: probes are free unless injection *could* be active
# anywhere in the process (an env/prefs spec exists, or a plan was
# installed through the API).  None = not yet computed.
_gate_lock = threading.Lock()
_GATE: Optional[bool] = None


def _compute_gate() -> bool:
    if os.environ.get(_ENV_FAULTS):
        return True
    try:
        from .core.preferences import read_preferences

        return _PREFS_KEY in read_preferences()
    except Exception:
        return False


def injection_possible() -> bool:
    """Cheap global gate consulted by every seam."""
    global _GATE
    gate = _GATE
    if gate is None:
        with _gate_lock:
            if _GATE is None:
                _GATE = _compute_gate()
            gate = _GATE
    return gate


def _open_gate() -> None:
    global _GATE
    with _gate_lock:
        _GATE = True


def refresh_gate() -> None:
    """Recompute the gate from env/prefs (tests that set PYACC_FAULTS
    after import)."""
    global _GATE
    with _gate_lock:
        _GATE = None


def active_plan() -> Optional[FaultPlan]:
    """The calling context's fault plan, or ``None`` (the common case)."""
    if not injection_possible():
        return None
    from .core.context import current_context

    return current_context().fault_plan


def fault_plan() -> Optional[FaultPlan]:
    """The current context's fault plan (resolving env/prefs lazily)."""
    from .core.context import current_context

    return current_context().fault_plan


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install (or clear, with ``None``) the current context's plan."""
    from .core.context import current_context

    if plan is not None:
        _open_gate()
    current_context().set_fault_plan(plan)
    return plan


def probe(
    site: str,
    device_id: Optional[str] = None,
    plan: Optional[FaultPlan] = None,
    ordinal: Optional[int] = None,
) -> None:
    """One injection seam.  Near-zero cost with no plan configured.

    ``plan`` short-circuits context resolution for seams reached from
    worker threads (contextvars do not propagate into pools).
    """
    if plan is None:
        plan = active_plan()
        if plan is None:
            return
    plan.check(site, device_id=device_id, ordinal=ordinal)


# ---------------------------------------------------------------------------
# The launch policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LaunchPolicy:
    """How one launch responds to device faults.

    - ``max_retries`` — transient failures retried up to this many times
      (then the original error re-raises: retry exhaustion never
      converts the error);
    - ``backoff_base`` / ``backoff_cap`` — capped exponential backoff,
      ``min(cap, base · 2^(attempt-1))`` wall-clock seconds between
      retries;
    - ``failover`` — whether permanent failures demote down the backend
      ladder instead of raising;
    - ``watchdog`` — wall-clock seconds an asynchronous handle may run
      before ``synchronize()`` raises ``LaunchTimeoutError`` (``None``
      disables the watchdog).
    """

    max_retries: int = 3
    backoff_base: float = 0.0005
    backoff_cap: float = 0.05
    failover: bool = True
    watchdog: Optional[float] = None

    def backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), in seconds."""
        if self.backoff_base <= 0.0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))


DEFAULT_POLICY = LaunchPolicy()


def launch_policy() -> LaunchPolicy:
    """The current context's launch policy."""
    from .core.context import current_context

    return current_context().launch_policy


def set_launch_policy(policy: Optional[LaunchPolicy]) -> LaunchPolicy:
    """Install the current context's launch policy (``None`` restores the
    default)."""
    from .core.context import current_context

    ctx = current_context()
    ctx.launch_policy = policy if policy is not None else DEFAULT_POLICY
    return ctx.launch_policy


def retry_transients(
    fn: Callable,
    *,
    policy: LaunchPolicy,
    site: str,
    plan: Optional["LaunchPlan"] = None,
    device_id: Optional[str] = None,
):
    """Run ``fn`` retrying :class:`TransientDeviceError` per the policy.

    Every seam guarded by this helper probes *before* side effects, so a
    retry re-runs a clean operation.  On exhaustion the original error
    re-raises unchanged (callers and tests see the real failure).
    """
    attempt = 0
    while True:
        try:
            return fn()
        except TransientDeviceError as exc:
            attempt += 1
            kernel = None
            if plan is not None:
                kernel = getattr(plan.fn, "__name__", None)
            if attempt > policy.max_retries:
                record_event(
                    FaultEvent(
                        site=exc.operation or site,
                        kind="transient",
                        action="exhausted",
                        attempt=attempt,
                        device_id=exc.device_id or device_id,
                        kernel=kernel,
                        detail=str(exc),
                    ),
                    plan,
                )
                raise
            record_event(
                FaultEvent(
                    site=exc.operation or site,
                    kind="transient",
                    action="retry",
                    attempt=attempt,
                    device_id=exc.device_id or device_id,
                    kernel=kernel,
                    detail=str(exc),
                ),
                plan,
            )
            delay = policy.backoff(attempt)
            if delay > 0.0:
                time.sleep(delay)


# ---------------------------------------------------------------------------
# The failover ladder (dispatch-level)
# ---------------------------------------------------------------------------


def demote_backend(backend: "Backend") -> Optional["Backend"]:
    """The next rung below ``backend`` on the failover ladder.

    multidevice / cluster (survivor rebalancing is internal to those
    backends; by the time they raise, the whole node or worker set is
    dead) → threads → serial → None.  The simulator's device storage —
    and the cluster backend's shared-memory segments — are host memory,
    so the demoted backend executes against the same buffers the failed
    workers owned, which is exactly what a managed-memory failover on
    real hardware provides.
    """
    from .backends.registry import create_backend
    from .backends.serial import SerialBackend
    from .backends.threads import ThreadsBackend

    if isinstance(backend, SerialBackend):
        # Includes InterpreterBackend: nothing below serial.
        return None
    if isinstance(backend, ThreadsBackend):
        return create_backend("serial")
    # GPU-class backends (single device or a fully-failed multi-device
    # node) and the cluster backend demote to the threads backend.
    return create_backend("threads")


def execute_plan(plan: "LaunchPlan", ctx) -> object:
    """Dispatch-stage enforcement: execute with permanent-failure failover.

    Transient retry happens *inside* ``Backend.execute`` (so native
    ``run_for`` paths are covered); this wrapper owns the backend-level
    ladder.  Failover is sticky — the context's backend is demoted so
    subsequent launches skip the dead hardware — and reuses the plan's
    already-resolved argument storage, which all backends share in the
    simulator (the managed-memory analogue).
    """
    policy = plan.policy or DEFAULT_POLICY
    while True:
        try:
            return plan.backend.execute(plan)
        except PermanentDeviceError as exc:
            if not policy.failover:
                raise
            fallback = demote_backend(plan.backend)
            if fallback is None:
                raise
            record_event(
                FaultEvent(
                    site=exc.operation or "dispatch",
                    kind="permanent",
                    action="failover",
                    device_id=exc.device_id,
                    kernel=getattr(plan.fn, "__name__", None),
                    detail=(
                        f"backend {plan.backend.name!r} failed permanently; "
                        f"demoted to {fallback.name!r}"
                    ),
                ),
                plan,
            )
            # Sticky demotion: the context routes future launches to the
            # fallback; the user-visible synchronous semantics hold.
            if ctx is not None and ctx._backend is plan.backend:
                ctx.set_backend(fallback)
            plan.backend = fallback
            plan.schedule = fallback.schedule(plan)
            # The plan's modeled-time span now runs on the fallback's
            # clock; rebase so sim_time_elapsed stays non-negative.
            if plan.sim_time_before is not None:
                plan.sim_time_before = fallback.accounting.sim_time
